package workload

import (
	"repro/internal/config"
	"repro/internal/sim"
)

// Session is a reusable simulator binding: one simulator constructed
// from (cfg, opts) that serves many workload runs, Reset in place
// between them instead of being rebuilt. Construction is the dominant
// per-point cost of a sweep (sim.New carves megabytes of queue backing
// and dozens of heap objects; the seed's MutexSweepSerial spent 815
// allocs per sweep on it), so the pooled sweep runners keep one Session
// per worker and recycle it across points.
//
// Every driver entry point has a Session form (Mutex, TicketMutex,
// RWLock, GUPS, Stream, BFS, Replay, BandwidthProbe); the package-level
// RunX functions construct a throwaway Session, so their semantics —
// including construction-time observer callbacks — are unchanged.
//
// Reuse contract: a Session is bit-identical to fresh construction only
// for option sets that satisfy sim.Reusable (no tracer, power model,
// metrics, sampler or observer — those bind per-construction state).
// The reset bit-identity suite pins this for all drivers, fault-free
// and under fault injection. CMC operations load once and stay loaded
// (they are stateless); the engine and agent scratch grow to the
// largest run and are reused. A Session is single-goroutine, like the
// simulator it wraps.
//
// Result.CompletionCycles returned from a Session run aliases session
// scratch and is valid only until the next run on the same Session; the
// shipped drivers aggregate it before returning.
type Session struct {
	sim  *sim.Simulator
	used bool
	// cfg and poolable support SessionPool recycling: only option-free
	// Sessions can be pooled (options are opaque closures a later Get
	// could not be matched against).
	cfg      config.Config
	poolable bool
	// cmc lists operation names already loaded into the simulator's CMC
	// tables (Load rejects duplicates; the list is a handful of entries,
	// so a linear scan beats a map).
	cmc []string

	// Engine scratch (runWith) reused across runs.
	state      []agentState
	completion []uint64
	agents     []Agent

	// Per-driver agent backing, grown to the largest run.
	muts    []MutexAgent
	ticks   []TicketAgent
	rws     []RWAgent
	gups    []GUPSAgent
	streams []StreamAgent
	bfss    []BFSAgent
}

// NewSession builds a simulator for cfg and wraps it for reuse. Options
// pass through to sim.New exactly as the RunX entry points do.
func NewSession(cfg config.Config, opts ...sim.Option) (*Session, error) {
	s, err := sim.New(cfg, opts...)
	if err != nil {
		return nil, err
	}
	return &Session{sim: s, cfg: cfg, poolable: poolableOptions(opts)}, nil
}

// Sim exposes the underlying simulator (post-run reports, JTAG pokes).
func (ss *Session) Sim() *sim.Simulator { return ss.sim }

// Close releases the simulator's worker pools. The session must not be
// used afterwards for parallel-clock runs without restarting pools (the
// simulator itself remains usable, as with Simulator.Close).
func (ss *Session) Close() { ss.sim.Close() }

// begin readies the simulator for the next run: Reset in place when the
// session has run before, and any CMC operations the driver needs that
// are not yet loaded. It returns the simulator for the driver body.
func (ss *Session) begin(cmcNames ...string) (*sim.Simulator, error) {
	if ss.used {
		ss.sim.Reset()
	}
	ss.used = true
	for _, name := range cmcNames {
		if !ss.hasCMC(name) {
			if err := ss.sim.LoadCMC(name); err != nil {
				return nil, err
			}
			ss.cmc = append(ss.cmc, name)
		}
	}
	return ss.sim, nil
}

func (ss *Session) hasCMC(name string) bool {
	for _, n := range ss.cmc {
		if n == name {
			return true
		}
	}
	return false
}

// run drives the engine over the session's pooled state/completion
// scratch — the allocation-free form of Run.
func (ss *Session) run(agents []Agent, maxCycles uint64) (Result, error) {
	n := len(agents)
	ss.state = grow(ss.state, n)
	clear(ss.state)
	ss.completion = grow(ss.completion, n)
	clear(ss.completion)
	return runWith(ss.sim, agents, maxCycles, ss.state, ss.completion)
}

// agentSlice returns the session's interface slice resized to n.
func (ss *Session) agentSlice(n int) []Agent {
	ss.agents = grow(ss.agents, n)
	return ss.agents
}

// grow returns s resized to n elements, reusing capacity. Growth at
// least doubles so a sweep over rising agent counts reallocates
// O(log n) times, not once per point. Callers overwrite every element,
// so surviving contents do not leak between runs.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n {
			c = n
		}
		return make([]T, n, c)
	}
	return s[:n]
}
