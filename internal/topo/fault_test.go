package topo

import (
	"testing"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/hmccmd"
	"repro/internal/packet"
)

// TestChainFaultsOnInterCubeLink: a 2-cube chain with a fault plan
// installed only on the far cube — the device whose links model the
// inter-cube hop — must still deliver every forwarded request and its
// response; recovery happens hop-by-hop at the faulting cube's link
// layer, invisible to the host beyond added latency.
func TestChainFaultsOnInterCubeLink(t *testing.T) {
	cfg := config.FourLink4GB()
	tp, err := New(KindChain, 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Faults only on cube 1: cube 0's links stay clean, so any retry
	// traffic recorded there would mean the fault leaked across the hop.
	far := tp.Devices()[1]
	if err := far.SetFaultPlan(fault.Plan{Rate: 0.10, Seed: 77}); err != nil {
		t.Fatal(err)
	}

	const n = 50
	sent := 0
	acks := 0
	for c := 0; c < 20000 && acks < n; c++ {
		for sent < n {
			r := &packet.Rqst{Cmd: hmccmd.WR16, CUB: 1, ADRS: uint64(sent) * 64,
				TAG: uint16(sent), SLID: uint8(sent % cfg.Links),
				Payload: []uint64{uint64(sent) + 500, 0}}
			if err := tp.Send(sent%cfg.Links, r); err != nil {
				break
			}
			sent++
		}
		tp.Clock()
		for link := 0; link < cfg.Links; link++ {
			for {
				rsp, ok := tp.Recv(link)
				if !ok {
					break
				}
				if int(rsp.CUB) != 1 {
					t.Fatalf("response from cube %d, want 1", rsp.CUB)
				}
				acks++
			}
		}
	}
	if acks != n {
		t.Fatalf("only %d/%d forwarded writes acknowledged", acks, n)
	}
	for i := 0; i < n; i++ {
		v, err := far.Store().ReadUint64(uint64(i) * 64)
		if err != nil || v != uint64(i)+500 {
			t.Errorf("word %d = %d, %v", i, v, err)
		}
	}
	farSt := far.Stats()
	if farSt.LinkRetries == 0 {
		t.Error("no retries on the faulted inter-cube hop")
	}
	if farSt.CRCErrors+farSt.Drops+farSt.DownWindows == 0 {
		t.Errorf("no faults recorded on cube 1: %+v", farSt)
	}
	nearSt := tp.Devices()[0].Stats()
	if nearSt.LinkRetries != 0 || nearSt.CRCErrors != 0 {
		t.Errorf("faults leaked to the clean cube: %+v", nearSt)
	}
	if tp.ForwardedRqsts != uint64(n) {
		t.Errorf("forwarded %d requests, want %d", tp.ForwardedRqsts, n)
	}
}

// TestChainFaultDeterminism: the same seed on the inter-cube link yields
// identical fault counters across runs.
func TestChainFaultDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		tp, err := New(KindChain, 2, config.TwoGBDev(), nil)
		if err != nil {
			t.Fatal(err)
		}
		far := tp.Devices()[1]
		if err := far.SetFaultPlan(fault.Plan{Rate: 0.10, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		acks := 0
		for i := 0; i < 30; i++ {
			r := &packet.Rqst{Cmd: hmccmd.RD16, CUB: 1, ADRS: uint64(i) * 64, TAG: uint16(i)}
			if err := tp.Send(0, r); err != nil {
				t.Fatal(err)
			}
			for acks <= i {
				tp.Clock()
				if _, ok := tp.Recv(0); ok {
					acks++
				}
			}
		}
		st := far.Stats()
		return st.LinkRetries, st.CRCErrors + st.Drops + st.DownWindows
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 || f1 != f2 {
		t.Errorf("same seed diverged: retries %d/%d faults %d/%d", r1, r2, f1, f2)
	}
	if f1 == 0 {
		t.Error("10% plan fired nothing")
	}
}
