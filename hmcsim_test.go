package hmcsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hmccmd"
)

// TestPublicAPIQuickstart exercises the documented facade flow end to
// end: construct, load a CMC op, send, clock, receive.
func TestPublicAPIQuickstart(t *testing.T) {
	s, err := New(FourLink4GB())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCMC("hmc_lock"); err != nil {
		t.Fatal(err)
	}
	r, err := BuildCMC(hmccmd.CMC125, 0, 0x40, 1, 0, []uint64{42, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Clock()
		if rsp, ok := s.Recv(0); ok {
			if rsp.Payload[0] != 1 {
				t.Fatalf("lock returned %d", rsp.Payload[0])
			}
			return
		}
	}
	t.Fatal("no response")
}

// TestScriptOpThroughFacade loads a .cmc program through the facade and
// runs it through a full simulation.
func TestScriptOpThroughFacade(t *testing.T) {
	prog, err := ParseCMCScript(`
op facade_fetchadd
rqst CMC85
rqst_len 2
rsp_len 2
rsp_cmd RD_RS

exec:
    load.lo      # old value
    dup
    ret 0        # return it
    arg 0
    add
    store.lo     # mem += arg
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(FourLink4GB())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCMCOp(prog); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Device(0)
	if err := d.Store().WriteUint64(0x100, 10); err != nil {
		t.Fatal(err)
	}
	r, err := BuildCMC(hmccmd.CMC85, 0, 0x100, 2, 0, []uint64{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Clock()
		if rsp, ok := s.Recv(0); ok {
			if rsp.Payload[0] != 10 {
				t.Fatalf("fetchadd returned %d, want old value 10", rsp.Payload[0])
			}
			if v, _ := d.Store().ReadUint64(0x100); v != 15 {
				t.Fatalf("memory %d, want 15", v)
			}
			return
		}
	}
	t.Fatal("no response")
}

func TestCMCNamesIncludeShippedOps(t *testing.T) {
	names := strings.Join(CMCNames(), ",")
	for _, want := range []string{"hmc_lock", "hmc_trylock", "hmc_unlock", "hmc_popcount16", "hmc_visit"} {
		if !strings.Contains(names, want) {
			t.Errorf("registry missing %s: %s", want, names)
		}
	}
}

func TestTracerFacade(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf, TraceCMC|TraceLatency)
	s, err := New(FourLink4GB(), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCMC("hmc_popcount16"); err != nil {
		t.Fatal(err)
	}
	r, err := BuildCMC(hmccmd.CMC69, 0, 0, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Clock()
		if _, ok := s.Recv(0); ok {
			break
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hmc_popcount16") {
		t.Errorf("trace missing op name: %s", buf.String())
	}
}

func TestLevelParseFacade(t *testing.T) {
	l, err := ParseTraceLevel("cmc+latency")
	if err != nil || l != TraceCMC|TraceLatency {
		t.Errorf("ParseTraceLevel = %v, %v", l, err)
	}
}

func TestMultiCubeFacade(t *testing.T) {
	s, err := New(TwoGBDev(), WithDevices(2, TopoChain))
	if err != nil {
		t.Fatal(err)
	}
	wr, err := BuildWrite(1, 0x40, 4, 0, []uint64{9, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, wr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s.Clock()
		if rsp, ok := s.Recv(0); ok {
			if rsp.CUB != 1 {
				t.Fatalf("rsp CUB %d", rsp.CUB)
			}
			return
		}
	}
	t.Fatal("no remote response")
}

func TestPowerFacade(t *testing.T) {
	s, err := New(FourLink4GB(), WithPower(DefaultPowerParams()))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := BuildRead(0, 0, 5, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, rd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Clock()
		if _, ok := s.Recv(0); ok {
			break
		}
	}
	if s.Power().TotalPJ() <= 0 {
		t.Error("no energy accumulated")
	}
}
