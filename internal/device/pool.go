package device

import "sync/atomic"

// Pool is a persistent worker pool: a fixed set of long-lived goroutines
// that execute one task function per epoch and rendezvous on a barrier
// before the epoch's Run call returns. It replaces the per-cycle
// goroutine spawning the execute phase originally used — at simulation
// rates (millions of cycles per second of wall time) the go + WaitGroup
// round trip per cycle dominates the fan-out cost, while a persistent
// pool pays only one channel handoff per worker per epoch and keeps the
// workers' stacks and scheduler state hot across cycles.
//
// The handoff protocol is deliberately minimal:
//
//   - Run stores the epoch's task, resets the remaining-worker count and
//     sends one token on each worker's wake channel (buffered, so the
//     sends never block).
//   - Each worker executes task(w) and decrements the count; the worker
//     that reaches zero signals the done channel.
//   - Run returns after receiving the done signal. The atomic
//     decrement chain orders every worker's task execution before Run's
//     return, so the caller may freely read anything the workers wrote.
//
// Determinism is the caller's contract: workers are identified by their
// fixed index w in [0, Size()), so a caller that partitions work by
// index and merges per-worker results in index order gets bit-identical
// output on every run regardless of scheduling.
//
// A Pool is not reentrant (one Run at a time) and is intended to be
// owned by a single clocking goroutine, exactly like the device and
// topology structures it serves.
type Pool struct {
	n      int
	task   func(worker int)
	wake   []chan struct{}
	done   chan struct{}
	remain atomic.Int32
	closed bool
}

// NewPool starts a pool of n persistent workers (n < 1 is treated as 1).
// Callers must Close the pool when done with it; the goroutines block on
// their wake channels between epochs and are not reclaimed by the
// garbage collector.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		n:    n,
		wake: make([]chan struct{}, n),
		done: make(chan struct{}, 1),
	}
	for w := 0; w < n; w++ {
		p.wake[w] = make(chan struct{}, 1)
		go p.worker(w)
	}
	return p
}

// Size returns the fixed worker count.
func (p *Pool) Size() int { return p.n }

// Run executes task(w) for every worker index w and blocks until all
// workers finish. Passing a pre-bound method value (stored once at pool
// creation) keeps Run allocation-free; an ad-hoc closure allocates once
// per call.
func (p *Pool) Run(task func(worker int)) {
	p.task = task
	p.remain.Store(int32(p.n))
	for _, c := range p.wake {
		c <- struct{}{}
	}
	<-p.done
	// Every worker's task read is ordered before its decrement, and the
	// final decrement is ordered before the done signal, so clearing the
	// task here cannot race; it just avoids pinning the callee between
	// epochs.
	p.task = nil
}

func (p *Pool) worker(w int) {
	for range p.wake[w] {
		p.task(w)
		if p.remain.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// Close shuts the workers down. Idempotent; a nil pool is a no-op. The
// pool must not be running (no Run in flight) and must not be used
// again after Close.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for _, c := range p.wake {
		close(c)
	}
}
