package device

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/hmccmd"
	"repro/internal/packet"
)

// TestNextEventCycleBasics pins the bound's three regimes on a fresh
// device: NeverCycle when fully quiescent, cycle+1 the moment anything
// is queued, and cycle+1 unconditionally under ForceWalk.
func TestNextEventCycleBasics(t *testing.T) {
	cfg := config.TwoGBDev()
	d, err := New(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b := d.NextEventCycle(); b != NeverCycle {
		t.Fatalf("fresh device bound = %d, want NeverCycle", b)
	}
	d.ForceWalk = true
	if b := d.NextEventCycle(); b != d.cycle+1 {
		t.Fatalf("ForceWalk bound = %d, want cycle+1 = %d", b, d.cycle+1)
	}
	d.ForceWalk = false
	r := &packet.Rqst{Cmd: hmccmd.RD16, ADRS: vaultAddr(cfg, 0, 0), TAG: 1}
	if err := d.Send(0, r); err != nil {
		t.Fatal(err)
	}
	if b := d.NextEventCycle(); b != d.cycle+1 {
		t.Fatalf("queued-head bound = %d, want cycle+1 = %d", b, d.cycle+1)
	}
	// Drive the round trip home; once the response is drained the device
	// is quiescent again — bank busy windows and retired retry slots are
	// lazy and must not pin the bound.
	for c := 0; c < 32; c++ {
		d.Clock()
		if rsp, ok := d.Recv(0); ok {
			packet.PutRsp(rsp)
			break
		}
	}
	if d.HostRspQueued() {
		t.Fatal("response not drained")
	}
	if b := d.NextEventCycle(); b != NeverCycle {
		t.Fatalf("post-drain bound = %d, want NeverCycle", b)
	}
}

// skipAdvance advances the skip-side device of the lockstep pair one
// decision: a maximal SkipCycles jump when the bound allows (capped at
// limit), otherwise one Clock. It also asserts the bound's basic sanity
// (always beyond the current cycle).
func skipAdvance(t *testing.T, d *Device, limit uint64) {
	t.Helper()
	b := d.NextEventCycle()
	if b != NeverCycle && b <= d.cycle {
		t.Fatalf("NextEventCycle = %d not beyond cycle %d", b, d.cycle)
	}
	if b == NeverCycle {
		if span := limit - d.cycle; span > 0 {
			d.SkipCycles(span)
			return
		}
	} else if b > d.cycle+1 {
		span := b - 1 - d.cycle
		if max := limit - d.cycle; span > max {
			span = max
		}
		if span > 0 {
			d.SkipCycles(span)
			return
		}
	}
	d.Clock()
}

// runLockstep drives one device through a seeded schedule of request
// bursts separated by idle gaps and renders everything observable — the
// cycle, link and tag of every response and send stall, plus the final
// report — into one comparable string. With skip=false every cycle is
// clocked (the reference walk); with skip=true the driver jumps every
// span NextEventCycle declares idle. Identical strings prove the bound
// is a true lower bound: any premature jump would lose a stall count, a
// window expiry or an occupancy sample and diverge the report.
func runLockstep(t *testing.T, cfg config.Config, plan fault.Plan, seed uint64, skip bool) string {
	t.Helper()
	d, err := New(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Enabled() {
		if err := d.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	rng := splitmix64(seed)
	var log strings.Builder
	payload := []uint64{3, 5}
	for burst := 0; burst < 16; burst++ {
		n := 1 + int(rng.next()%6)
		expect := 0
		for i := 0; i < n; i++ {
			v := int(rng.next() % uint64(cfg.Vaults))
			r := packet.Rqst{ADRS: vaultAddr(cfg, v, int(rng.next()%8)), TAG: uint16(i)}
			switch rng.next() % 3 {
			case 0:
				r.Cmd = hmccmd.RD16
			case 1:
				r.Cmd, r.Payload = hmccmd.WR16, payload
			default:
				r.Cmd, r.Payload = hmccmd.ADD16, payload
			}
			if err := d.Send(i%cfg.Links, &r); err != nil {
				fmt.Fprintf(&log, "stall c=%d b=%d i=%d\n", d.cycle, burst, i)
				continue
			}
			if !r.Cmd.Posted() {
				expect++
			}
		}
		// Drain the burst: responses must surface at identical cycles on
		// both sides. The budget is generous enough for pathological
		// fault plans (every traversal dropped retries after the full
		// timeout, repeatedly).
		got := 0
		limit := d.cycle + 16384
		for got < expect && d.cycle < limit {
			if skip {
				skipAdvance(t, d, limit)
			} else {
				d.Clock()
			}
			for l := 0; l < cfg.Links; l++ {
				for {
					rsp, ok := d.Recv(l)
					if !ok {
						break
					}
					fmt.Fprintf(&log, "rsp c=%d l=%d tag=%d cmd=%v\n", d.cycle, l, rsp.TAG, rsp.Cmd)
					packet.PutRsp(rsp)
					got++
				}
			}
		}
		if got != expect {
			t.Fatalf("burst %d (skip=%v): drained %d of %d responses", burst, skip, got, expect)
		}
		// Idle gap: the skip side must fast-forward it in O(1) jumps.
		gap := rng.next() % 700
		limit = d.cycle + gap
		for d.cycle < limit {
			if skip {
				skipAdvance(t, d, limit)
			} else {
				d.Clock()
			}
		}
	}
	rep := d.BuildReport()
	fmt.Fprintf(&log, "cycle=%d\n%s\nimbalance=%.6f ops/cycle=%.6f stats=%+v",
		d.cycle, rep.String(), rep.LoadImbalance(), rep.OpsPerCycle(), d.Stats())
	return log.String()
}

// TestNextEventLowerBoundProperty is the quiescence bound's property
// test: across seeds and fault environments — including heavy Drop
// traffic (retransmit-timeout parks) and heavy Down traffic (link-wide
// outage windows) — a driver that jumps every span NextEventCycle
// declares idle observes byte-identical responses, stalls and final
// reports to one that clocks every cycle.
func TestNextEventLowerBoundProperty(t *testing.T) {
	cfg := config.TwoGBDev()
	plans := []struct {
		name string
		plan fault.Plan
	}{
		{"no-faults", fault.Plan{}},
		{"all-1pct", fault.Plan{Rate: 0.01, Seed: 3}},
		{"drop-heavy", fault.Plan{Rate: 0.3, Seed: 7, Kinds: fault.Drop}},
		{"down-heavy", fault.Plan{Rate: 0.3, Seed: 9, Kinds: fault.Down, DownCycles: 50}},
		{"mixed-10pct", fault.Plan{Rate: 0.1, Seed: 11, DownCycles: 40, DropTimeoutCycles: 30}},
	}
	for _, p := range plans {
		t.Run(p.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 0xABCD} {
				walk := runLockstep(t, cfg, p.plan, seed, false)
				jump := runLockstep(t, cfg, p.plan, seed, true)
				if walk != jump {
					t.Errorf("seed %#x: walked and jumped runs diverge:\n--- walk\n%s\n--- jump\n%s", seed, walk, jump)
				}
			}
		})
	}
}

// clockUntilParked walks the device until the given window value
// (downUntil or retryUntil) parks the head strictly beyond the next
// cycle, or fails after a budget.
func clockUntilParked(t *testing.T, d *Device, window func() uint64) {
	t.Helper()
	for c := 0; c < 256; c++ {
		if window() > d.cycle+1 && !d.links[0].rqst.Empty() {
			return
		}
		d.Clock()
	}
	t.Fatal("head never parked behind the fault window")
}

// TestSkipNeverJumpsDownWindow is the ClockN-edge regression for
// link-down outages: with a head parked behind a Plan.DownCycles
// window, NextEventCycle must return exactly the window expiry — a
// larger bound would let a skip jump the boundary and miss the wake
// cycle's traversal attempt.
func TestSkipNeverJumpsDownWindow(t *testing.T) {
	cfg := config.TwoGBDev()
	d, err := New(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const downCycles = 64
	if err := d.SetFaultPlan(fault.Plan{Rate: 1, Seed: 5, Kinds: fault.Down, DownCycles: downCycles}); err != nil {
		t.Fatal(err)
	}
	r := &packet.Rqst{Cmd: hmccmd.RD16, ADRS: vaultAddr(cfg, 0, 0), TAG: 1}
	if err := d.Send(0, r); err != nil {
		t.Fatal(err)
	}
	l := &d.links[0]
	clockUntilParked(t, d, func() uint64 { return l.downUntil })
	wake := l.downUntil
	if until := l.rqstDir.retryUntil; until > wake {
		wake = until
	}
	if b := d.NextEventCycle(); b != wake {
		t.Fatalf("parked-head bound = %d, want window expiry %d (cycle %d)", b, wake, d.cycle)
	}
	// Jump to the eve of the window and step across it: the traversal
	// attempt must happen exactly at the wake cycle (with Rate 1 it
	// faults again, arming a fresh window — observable proof the
	// boundary was not skipped).
	d.SkipCycles(wake - 1 - d.cycle)
	if d.cycle != wake-1 {
		t.Fatalf("skip landed on %d, want %d", d.cycle, wake-1)
	}
	if b := d.NextEventCycle(); b != wake {
		t.Fatalf("bound after skip = %d, want %d", b, wake)
	}
	d.Clock()
	if l.downUntil <= wake {
		t.Fatalf("wake-cycle traversal did not arm a new window: downUntil=%d, wake=%d", l.downUntil, wake)
	}
}

// TestSkipNeverJumpsDropTimeout is the matching regression for dropped
// packets: a head parked on its retransmit timeout must bound the skip
// at exactly the timeout expiry, and the retransmission must run on the
// wake cycle.
func TestSkipNeverJumpsDropTimeout(t *testing.T) {
	cfg := config.TwoGBDev()
	d, err := New(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 48
	if err := d.SetFaultPlan(fault.Plan{Rate: 1, Seed: 5, Kinds: fault.Drop, DropTimeoutCycles: timeout}); err != nil {
		t.Fatal(err)
	}
	r := &packet.Rqst{Cmd: hmccmd.RD16, ADRS: vaultAddr(cfg, 0, 0), TAG: 1}
	if err := d.Send(0, r); err != nil {
		t.Fatal(err)
	}
	l := &d.links[0]
	dir := &l.rqstDir
	clockUntilParked(t, d, func() uint64 { return dir.retryUntil })
	wake := dir.retryUntil
	if l.downUntil > wake {
		wake = l.downUntil
	}
	if b := d.NextEventCycle(); b != wake {
		t.Fatalf("parked-head bound = %d, want timeout expiry %d (cycle %d)", b, wake, d.cycle)
	}
	drops := d.Stats().Drops
	d.SkipCycles(wake - 1 - d.cycle)
	d.Clock()
	// With Rate 1 the wake-cycle retransmission is dropped again: the
	// drop counter and a fresh timeout are observable proof the attempt
	// ran exactly at the expiry rather than being skipped past.
	if got := d.Stats().Drops; got != drops+1 {
		t.Fatalf("wake-cycle retransmission did not run: drops %d -> %d", drops, got)
	}
	if dir.retryUntil <= wake {
		t.Fatalf("retransmission did not arm a new timeout: retryUntil=%d, wake=%d", dir.retryUntil, wake)
	}
}
