// Package trace implements the simulator's discrete tracing subsystem.
//
// HMC-Sim 1.0 shipped "powerful tracing capability that permitted users to
// see exactly how and where memory operations progressed through the
// device" (paper §IV-A); the 2.0 CMC requirement extends it so that
// user-defined CMC operations appear in trace files under their registered
// human-readable names, "resolved in the trace file just as any normal HMC
// command".
//
// Tracing is organized as a bitmask of event levels and pluggable sinks: a
// human-readable text writer, a machine-readable JSONL writer, an
// in-memory recorder for tests, and a no-op sink for hot simulations.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Level is a bitmask of trace event categories, mirroring the original
// simulator's trace-level macros.
type Level uint32

// Trace levels.
const (
	// LevelBank traces bank conflicts and bank busy stalls.
	LevelBank Level = 1 << iota
	// LevelQueue traces queue-depth high-water events.
	LevelQueue
	// LevelLatency traces per-packet end-to-end latency at response
	// delivery.
	LevelLatency
	// LevelStall traces send-side and internal pipeline stalls.
	LevelStall
	// LevelRqst traces request packet processing.
	LevelRqst
	// LevelRsp traces response packet construction.
	LevelRsp
	// LevelCMC traces custom memory cube operation execution.
	LevelCMC
	// LevelPower traces per-operation energy estimates (extension).
	LevelPower

	// LevelAll enables every category.
	LevelAll Level = 1<<iota - 1
)

var levelNames = []struct {
	l    Level
	name string
}{
	{LevelBank, "BANK"},
	{LevelQueue, "QUEUE"},
	{LevelLatency, "LATENCY"},
	{LevelStall, "STALL"},
	{LevelRqst, "RQST"},
	{LevelRsp, "RSP"},
	{LevelCMC, "CMC"},
	{LevelPower, "POWER"},
}

// String renders the level set as a "+"-joined list of category names.
func (l Level) String() string {
	if l == 0 {
		return "NONE"
	}
	var parts []string
	for _, ln := range levelNames {
		if l&ln.l != 0 {
			parts = append(parts, ln.name)
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("Level(%#x)", uint32(l))
	}
	return strings.Join(parts, "+")
}

// ParseLevel parses a "+"-joined list of category names (case
// insensitive); "all" and "none" are accepted.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "all":
		return LevelAll, nil
	case "none", "":
		return 0, nil
	}
	var l Level
	for _, part := range strings.Split(s, "+") {
		found := false
		for _, ln := range levelNames {
			if strings.EqualFold(strings.TrimSpace(part), ln.name) {
				l |= ln.l
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("trace: unknown level %q", part)
		}
	}
	return l, nil
}

// Event is one trace record.
type Event struct {
	// Cycle is the device clock cycle the event occurred on.
	Cycle uint64 `json:"cycle"`
	// Kind is the (single) level bit categorizing the event.
	Kind Level `json:"kind"`
	// KindName is the textual category, filled in by the sinks.
	KindName string `json:"kind_name,omitempty"`
	// Dev, Quad, Vault and Bank locate the event; -1 marks
	// not-applicable coordinates.
	Dev   int `json:"dev"`
	Quad  int `json:"quad"`
	Vault int `json:"vault"`
	Bank  int `json:"bank"`
	// Cmd is the command mnemonic — for CMC operations, the op's
	// registered human-readable name.
	Cmd string `json:"cmd,omitempty"`
	// Tag is the request tag, if any.
	Tag uint16 `json:"tag"`
	// Addr is the target address, if any.
	Addr uint64 `json:"addr"`
	// Value carries an event-specific quantity (latency cycles, queue
	// depth, energy picojoules).
	Value uint64 `json:"value,omitempty"`
	// Detail is a freeform annotation.
	Detail string `json:"detail,omitempty"`
}

// Tracer is a sink for trace events. Implementations must tolerate
// concurrent Emit calls.
type Tracer interface {
	// Enabled reports whether the level is being collected; callers use
	// it to skip event construction on hot paths.
	Enabled(Level) bool
	// Emit records one event.
	Emit(Event)
}

// Nop is a Tracer that collects nothing.
type Nop struct{}

// Enabled always reports false.
func (Nop) Enabled(Level) bool { return false }

// Emit discards the event.
func (Nop) Emit(Event) {}

func kindName(l Level) string {
	for _, ln := range levelNames {
		if l == ln.l {
			return ln.name
		}
	}
	return l.String()
}

// TextTracer writes human-readable single-line records.
type TextTracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	levels Level
}

// NewText returns a text tracer collecting the given levels.
func NewText(w io.Writer, levels Level) *TextTracer {
	return &TextTracer{w: bufio.NewWriter(w), levels: levels}
}

// Enabled implements Tracer.
func (t *TextTracer) Enabled(l Level) bool { return t.levels&l != 0 }

// Emit implements Tracer.
func (t *TextTracer) Emit(e Event) {
	if !t.Enabled(e.Kind) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "HMCSIM_TRACE : %d : %s : dev=%d quad=%d vault=%d bank=%d cmd=%s tag=%d addr=0x%x value=%d",
		e.Cycle, kindName(e.Kind), e.Dev, e.Quad, e.Vault, e.Bank, e.Cmd, e.Tag, e.Addr, e.Value)
	if e.Detail != "" {
		fmt.Fprintf(t.w, " : %s", e.Detail)
	}
	fmt.Fprintln(t.w)
}

// Flush drains buffered output to the underlying writer.
func (t *TextTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// JSONLTracer writes one JSON object per line, parseable by ParseJSONL.
type JSONLTracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	levels Level
}

// NewJSONL returns a JSONL tracer collecting the given levels.
func NewJSONL(w io.Writer, levels Level) *JSONLTracer {
	bw := bufio.NewWriter(w)
	return &JSONLTracer{w: bw, enc: json.NewEncoder(bw), levels: levels}
}

// Enabled implements Tracer.
func (t *JSONLTracer) Enabled(l Level) bool { return t.levels&l != 0 }

// Emit implements Tracer.
func (t *JSONLTracer) Emit(e Event) {
	if !t.Enabled(e.Kind) {
		return
	}
	e.KindName = kindName(e.Kind)
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(e)
}

// Flush drains buffered output to the underlying writer.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// recorderChunk is the Recorder's allocation unit: events are stored in
// fixed-size chunks appended to a chunk list, so recording N events
// costs N/recorderChunk allocations and never re-copies earlier events
// (a flat slice would copy the whole history on every growth step).
const recorderChunk = 256

// Recorder is an in-memory Tracer for tests and analysis.
type Recorder struct {
	mu     sync.Mutex
	levels Level
	chunks [][]Event
	n      int
}

// NewRecorder returns a recorder collecting the given levels.
func NewRecorder(levels Level) *Recorder { return &Recorder{levels: levels} }

// Enabled implements Tracer.
func (r *Recorder) Enabled(l Level) bool { return r.levels&l != 0 }

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	if !r.Enabled(e.Kind) {
		return
	}
	e.KindName = kindName(e.Kind)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.chunks) == 0 || len(r.chunks[len(r.chunks)-1]) == recorderChunk {
		r.chunks = append(r.chunks, make([]Event, 0, recorderChunk))
	}
	last := len(r.chunks) - 1
	r.chunks[last] = append(r.chunks[last], e)
	r.n++
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	return out
}

// OfKind returns the recorded events matching the level mask.
func (r *Recorder) OfKind(mask Level) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, c := range r.chunks {
		for _, e := range c {
			if e.Kind&mask != 0 {
				out = append(out, e)
			}
		}
	}
	return out
}

// Reset clears the recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chunks = nil
	r.n = 0
}

// ParseJSONL reads back a JSONL trace stream.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: parsing JSONL record %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
