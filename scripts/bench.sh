#!/usr/bin/env sh
# Runs the hot-path benchmarks (perf_bench_test.go) with -benchmem and
# records them as machine-readable JSON in BENCH_<date>.json, tracking
# the performance trajectory across PRs. Compare against the table in
# EXPERIMENTS.md ("Performance" section).
#
# After recording, the run is diffed against the most recent prior
# BENCH_*.json: any benchmark whose ns/op grew by more than 10% prints a
# WARNING (the script still exits 0 — benchmarks on shared hosts are
# noisy; the warning is a prompt to re-run and investigate, not a gate).
#
# Each record carries the host's GOMAXPROCS and CPU count so diffs can
# flag apples-to-oranges comparisons: the pooled engine's numbers depend
# on the core budget, and a record from a 1-core CI host must not be
# read as a regression against an 8-core workstation. The pooled
# benchmarks additionally rerun pinned to -cpu 1 and are recorded under
# .../cpu1 names — a like-with-like single-core baseline every host can
# reproduce.
#
# Usage: ./scripts/bench.sh [extra go test args]
set -eu

cd "$(dirname "$0")/.."
date="$(date +%F)"
numcpu="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
gomaxprocs="${GOMAXPROCS:-$numcpu}"
out="BENCH_${date}.json"
# Never clobber an existing record: same-day reruns get a numeric suffix
# so earlier baselines stay diffable.
n=1
while [ -e "$out" ]; do
    n=$((n + 1))
    out="BENCH_${date}.${n}.json"
done
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Most recent prior baseline (by modification time — suffixed same-day
# records sort wrongly under a lexical sort), captured before $out is
# written.
prev="$(ls -1t BENCH_*.json 2>/dev/null | head -1 || true)"

# The BenchmarkClockLoop prefix also covers the span-tracer pair
# (BenchmarkClockLoopSpansOff / BenchmarkClockLoopSpansSampled), so the
# sampled-tracing overhead rides the same >10% regression warning.
go test -run '^$' \
    -bench 'BenchmarkClockLoop|BenchmarkMutexSweep|BenchmarkPacket|BenchmarkCRC|BenchmarkMetrics|BenchmarkFault|BenchmarkTopoChainClock|BenchmarkPooledExecPhase|BenchmarkIdleFastForward' \
    -benchmem -benchtime 1s "$@" . | tee "$raw"

# Single-core baseline for the pooled benchmarks: GOMAXPROCS pinned to 1
# puts the worker pools on their inline path, so these numbers are
# host-independent. Recorded under distinct .../cpu1 names (with -cpu 1
# the go tool appends no -N suffix to strip).
go test -run '^$' \
    -bench 'BenchmarkTopoChainClockPooled|BenchmarkPooledExecPhase/workers8' \
    -benchmem -benchtime 1s -cpu 1 . \
    | sed 's|^\(Benchmark[^ 	]*\)|\1/cpu1|' | tee -a "$raw"

# Session-server hot paths: one protocol round trip against a warm
# session, a full send/clock/recv request cycle (sequential and as one
# batch frame in each wire encoding), and pooled init+close session
# churn.
go test -run '^$' \
    -bench 'BenchmarkServerOpRoundTrip|BenchmarkServerSendRecvRoundTrip|BenchmarkServerBatchedSendRecv|BenchmarkServerSessionChurn' \
    -benchmem -benchtime 1s ./internal/server | tee -a "$raw"

# The many-thousand-session load harness: 10k concurrent sessions on an
# in-process server, sessions/sec, ops/sec and exact steady-state
# p50/p99 latency (open-phase latency is reported separately). Two
# variants ride in the BENCH json: the debuggable default (line-JSON,
# one op per frame) under "hmcd_load", and the fast path (binary
# protocol, 3-op batched frames) under "hmcd_load_binary_batch".
loadraw="$(mktemp)"
loadraw2="$(mktemp)"
trap 'rm -f "$raw" "$loadraw" "$loadraw2"' EXIT
go run ./cmd/hmcd-load -sessions 10000 -rounds 3 -warmup 1 -out "$loadraw"
go run ./cmd/hmcd-load -sessions 10000 -rounds 3 -warmup 1 -proto binary -batch -out "$loadraw2"

awk -v date="$date" -v gomaxprocs="$gomaxprocs" -v numcpu="$numcpu" \
    -v loadfile="$loadraw" -v loadfile2="$loadraw2" '
  # embed splices one pretty-printed hmcd-load record into the output
  # object under key, preceded by a comma; returns 1 if anything was
  # written.
  function embed(file, key,    firstline, l) {
    if (file == "" || (getline firstline < file) <= 0) return 0
    printf ",\n  \"%s\": %s\n", key, firstline
    while ((getline l < file) > 0) printf "  %s\n", l
    return 1
  }
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; pts = ""; cyc = ""
    for (i = 2; i <= NF; i++) {
      if ($(i+1) == "ns/op") ns = $i
      if ($(i+1) == "B/op") bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
      if ($(i+1) == "points/s") pts = $i
      if ($(i+1) == "simcycles/s") cyc = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s",
                   name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
    # Sweep benchmarks report derived throughput (points retired and
    # simulated device cycles per wall second); carry them through.
    if (pts != "") line = line sprintf(", \"sweep_points_per_sec\": %s", pts)
    if (cyc != "") line = line sprintf(", \"sim_cycles_per_sec\": %s", cyc)
    line = line "}"
    lines[n++] = line
  }
  END {
    printf "{\n  \"date\": \"%s\",\n  \"gomaxprocs\": %d,\n  \"numcpu\": %d,\n  \"benchmarks\": [\n", date, gomaxprocs, numcpu
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    printf "  ]"
    any = embed(loadfile, "hmcd_load")
    any += embed(loadfile2, "hmcd_load_binary_batch")
    if (any > 0) printf "}\n"
    else printf "\n}\n"
  }
' "$raw" > "$out"

echo "wrote $out"

if [ -n "$prev" ] && [ -f "$prev" ]; then
    # Like-with-like check: warn when the prior record ran under a
    # different core budget (older records carry no gomaxprocs field and
    # count as unknown).
    prev_procs="$(sed -n 's/.*"gomaxprocs": \([0-9][0-9]*\).*/\1/p' "$prev" | head -1)"
    if [ "${prev_procs:-unknown}" != "$gomaxprocs" ]; then
        echo "NOTE: $prev ran with GOMAXPROCS=${prev_procs:-unknown}, this run with $gomaxprocs;"
        echo "      pooled-engine comparisons are not like-with-like (the .../cpu1 rows are)."
    fi
    echo "diff vs $prev (ns/op):"
    awk -v prevfile="$prev" '
      {
        if (match($0, /"name": "[^"]+"/)) {
          name = substr($0, RSTART + 9, RLENGTH - 10)
          if (match($0, /"ns_per_op": [0-9.]+/)) {
            ns = substr($0, RSTART + 13, RLENGTH - 13) + 0
            if (FILENAME == prevfile) old[name] = ns
            else new[name] = ns
            if (!(name in seen)) { order[m++] = name; seen[name] = 1 }
          }
        }
      }
      END {
        for (i = 0; i < m; i++) {
          n = order[i]
          if (!(n in new)) continue
          if (!(n in old) || old[n] <= 0) {
            printf "  %-32s %12.1f  (new benchmark)\n", n, new[n]
            continue
          }
          growth = (new[n] - old[n]) / old[n] * 100
          tag = (growth > 10) ? "  <-- WARNING: >10% ns/op growth" : ""
          printf "  %-32s %12.1f -> %-12.1f %+6.1f%%%s\n", n, old[n], new[n], growth, tag
        }
      }
    ' "$prev" "$out"
else
    echo "no prior BENCH_*.json to diff against"
fi
