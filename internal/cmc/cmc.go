// Package cmc implements the Custom Memory Cube operation architecture —
// the primary contribution of the paper (§IV).
//
// The Gen2 command space leaves 70 command codes unused; each is exposed
// as a CMCnn request enum (internal/hmccmd) that a user-supplied operation
// can be bound to at run time, without modifying the simulator core.
//
// # Relationship to the C implementation
//
// The original simulator loads CMC operations from externally compiled
// shared objects via dlopen, resolving three symbols with dlsym:
// cmc_register, cmc_execute (hmcsim_execute_cmc) and cmc_str. In Go the
// same contract is an interface with three methods:
//
//	Register() Descriptor   // cmc_register: resolve the static descriptor
//	Execute(*ExecContext)   // hmcsim_execute_cmc: perform the operation
//	Str() string            // cmc_str: human-readable trace name
//
// Run-time loading is preserved two ways: (a) operation packages register
// factories by name in a process-wide registry (the analogue of a shared-
// object search path; Open is the dlopen analogue), and (b) the script
// sub-package parses .cmc operation definitions from external files at
// run time. Go's plugin package is deliberately not used: it is
// Linux-only and fragile for offline builds, and the architectural
// property under test — extending the command space through a fixed
// three-entry-point contract — is fully preserved by the registry.
//
// The internal Table mirrors the core library's array of hmc_cmc_t
// structures: one slot per CMC command code, holding the descriptor data
// and the resolved "function pointers" (the Operation value).
package cmc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/hmccmd"
	"repro/internal/mem"
)

// Errors returned by registration and dispatch.
var (
	// ErrNotCMCSlot reports a descriptor naming an architected (non-CMC)
	// command.
	ErrNotCMCSlot = errors.New("cmc: request enum is not a CMC slot")
	// ErrCmdMismatch reports a descriptor whose Cmd code disagrees with
	// its Rqst enum (paper Table III: "Must match the rqst field").
	ErrCmdMismatch = errors.New("cmc: cmd code does not match rqst enum")
	// ErrBadDescriptor reports out-of-range descriptor lengths or a
	// missing response code.
	ErrBadDescriptor = errors.New("cmc: invalid descriptor")
	// ErrSlotBusy reports a load against a command code that already has
	// an active operation.
	ErrSlotBusy = errors.New("cmc: command code already registered")
	// ErrInactive reports a request for a CMC command with no registered
	// operation; it mirrors the paper's "if the command is not marked as
	// active, an error is returned" (§IV-C2).
	ErrInactive = errors.New("cmc: command not active")
	// ErrUnknownOp is the dlopen-failure analogue: no operation with the
	// requested name exists in the registry.
	ErrUnknownOp = errors.New("cmc: unknown operation name")
	// ErrTableFull reports more loads than available CMC slots.
	ErrTableFull = errors.New("cmc: all 70 CMC slots in use")
)

// Descriptor carries the static, per-operation data the C implementation
// keeps in required static globals (paper Table III).
type Descriptor struct {
	// OpName uniquely identifies the operation in trace files.
	OpName string
	// Rqst is the CMC request enum the operation binds to.
	Rqst hmccmd.Rqst
	// Cmd is the decimal command code; it must match Rqst.Code().
	Cmd uint32
	// RqstLen is the request packet length in FLITs, including header and
	// tail (1..17).
	RqstLen uint8
	// RspLen is the response packet length in FLITs; zero marks the
	// operation as posted.
	RspLen uint8
	// RspCmd is the response command type; RspCMC enables a custom code.
	RspCmd hmccmd.Resp
	// RspCmdCode is the custom 8-bit response command code used when
	// RspCmd is RspCMC.
	RspCmdCode uint8
}

// Validate checks the descriptor against the architected constraints.
func (d Descriptor) Validate() error {
	if d.OpName == "" {
		return fmt.Errorf("%w: empty op_name", ErrBadDescriptor)
	}
	if !d.Rqst.IsCMC() {
		return fmt.Errorf("%w: %v", ErrNotCMCSlot, d.Rqst)
	}
	if uint32(d.Rqst.Code()) != d.Cmd {
		return fmt.Errorf("%w: cmd=%d but %v has code %d", ErrCmdMismatch, d.Cmd, d.Rqst, d.Rqst.Code())
	}
	if d.RqstLen < 1 || d.RqstLen > hmccmd.MaxPacketFlits {
		return fmt.Errorf("%w: rqst_len=%d (want 1..%d)", ErrBadDescriptor, d.RqstLen, hmccmd.MaxPacketFlits)
	}
	if d.RspLen > hmccmd.MaxPacketFlits {
		return fmt.Errorf("%w: rsp_len=%d (want 0..%d)", ErrBadDescriptor, d.RspLen, hmccmd.MaxPacketFlits)
	}
	if d.RspLen == 0 && d.RspCmd != hmccmd.RspNone {
		return fmt.Errorf("%w: posted op (rsp_len=0) with response command %v", ErrBadDescriptor, d.RspCmd)
	}
	if d.RspLen > 0 && d.RspCmd == hmccmd.RspNone {
		return fmt.Errorf("%w: rsp_len=%d with RSP_NONE", ErrBadDescriptor, d.RspLen)
	}
	return nil
}

// MemoryAccess is the in-situ view of vault memory handed to an executing
// operation. The C implementation reaches memory through the hmc_sim_t
// context pointer; the Go interface scopes the same capability.
type MemoryAccess interface {
	ReadBlock(addr uint64) (mem.Block, error)
	WriteBlock(addr uint64, b mem.Block) error
	ReadUint64(addr uint64) (uint64, error)
	WriteUint64(addr, v uint64) error
}

// ExecContext carries the execution-function arguments of paper Table IV.
type ExecContext struct {
	// Dev, Quad, Vault and Bank locate where the operation executes.
	Dev, Quad, Vault, Bank uint32
	// Addr is the target base address of the incoming request.
	Addr uint64
	// Length is the incoming request length in FLITs.
	Length uint32
	// Head and Tail are the raw packet header and tail words.
	Head, Tail uint64
	// RqstPayload is the raw request data payload (the words between
	// header and tail). The implementor discerns its internal structure.
	RqstPayload []uint64
	// RspPayload is the outgoing response data buffer, pre-sized to
	// 2*(RspLen-1) words; the implementor fills any data it returns.
	// Callers may supply a zeroed buffer of exactly that size to avoid
	// the per-execute allocation; Execute replaces it otherwise.
	RspPayload []uint64
	// Mem is the in-situ memory of the executing vault's device.
	Mem MemoryAccess
	// Cycle is the device clock cycle of execution.
	Cycle uint64
}

// Operation is a user-implemented CMC operation: the Go analogue of the
// three dlsym-resolved entry points.
type Operation interface {
	// Register resolves the operation's static descriptor data
	// (cmc_register).
	Register() Descriptor
	// Execute performs the operation (hmcsim_execute_cmc). A non-nil
	// error poisons the response with an error status; it does not abort
	// the simulation.
	Execute(ctx *ExecContext) error
	// Str returns the human-readable name printed in trace logs
	// (cmc_str).
	Str() string
}

// Slot is the hmc_cmc_t equivalent: the registration record for one CMC
// command code.
type Slot struct {
	// Desc is the descriptor resolved at load time.
	Desc Descriptor
	// Op holds the resolved entry points.
	Op Operation
	// Active marks the slot as accepting packets (§IV-C2).
	Active bool
}

// Table is the per-simulator CMC registration table.
type Table struct {
	slots [hmccmd.NumCodes]*Slot
	count int
}

// NewTable returns an empty registration table.
func NewTable() *Table { return &Table{} }

// Load registers an operation, performing the paper's registration
// sequence: resolve the three entry points (the Operation value), call
// cmc_register (Register), validate the descriptor, and mark the slot
// active. It fails if the target command code is already active.
func (t *Table) Load(op Operation) error {
	if op == nil {
		return fmt.Errorf("%w: nil operation", ErrBadDescriptor)
	}
	d := op.Register()
	if err := d.Validate(); err != nil {
		return err
	}
	if t.count >= hmccmd.NumCMCSlots {
		return ErrTableFull
	}
	code := uint8(d.Cmd)
	if s := t.slots[code]; s != nil && s.Active {
		return fmt.Errorf("%w: code %d (%s)", ErrSlotBusy, code, s.Desc.OpName)
	}
	t.slots[code] = &Slot{Desc: d, Op: op, Active: true}
	t.count++
	return nil
}

// Unload deactivates the operation bound to a command code, freeing the
// slot for reuse.
func (t *Table) Unload(code uint8) error {
	if code >= hmccmd.NumCodes || t.slots[code] == nil || !t.slots[code].Active {
		return fmt.Errorf("%w: code %d", ErrInactive, code)
	}
	t.slots[code] = nil
	t.count--
	return nil
}

// Slot returns the active slot for a command code; ok is false for
// inactive or unbound codes.
func (t *Table) Slot(code uint8) (*Slot, bool) {
	if code >= hmccmd.NumCodes || t.slots[code] == nil || !t.slots[code].Active {
		return nil, false
	}
	return t.slots[code], true
}

// Count returns the number of active operations.
func (t *Table) Count() int { return t.count }

// Active returns the active slots in ascending command-code order.
func (t *Table) Active() []*Slot {
	var out []*Slot
	for _, s := range t.slots {
		if s != nil && s.Active {
			out = append(out, s)
		}
	}
	return out
}

// Execute dispatches one CMC request against the table (the CMC branch of
// hmcsim_process_rqst, paper Figure 3). On success it returns the slot —
// whose descriptor drives response construction — and the filled response
// payload. An inactive command returns ErrInactive.
func (t *Table) Execute(code uint8, ctx *ExecContext) (*Slot, error) {
	s, ok := t.Slot(code)
	if !ok {
		return nil, fmt.Errorf("%w: code %d", ErrInactive, code)
	}
	// Reuse a caller-supplied zeroed response buffer of the right size
	// (the vault hands in pooled packet payloads); allocate only when the
	// caller didn't pre-size it.
	if want := 2 * (int(s.Desc.RspLen) - 1); s.Desc.RspLen > 1 && len(ctx.RspPayload) != want {
		ctx.RspPayload = make([]uint64, want)
	}
	if err := s.Op.Execute(ctx); err != nil {
		return s, fmt.Errorf("cmc: %s execute: %w", s.Desc.OpName, err)
	}
	return s, nil
}

// --- Process-wide operation registry (the dlopen search-path analogue) ---

var registry = struct {
	sync.RWMutex
	factories map[string]func() Operation
}{factories: make(map[string]func() Operation)}

// RegisterFactory publishes an operation constructor under a name, the
// analogue of installing a CMC shared object where the simulator can find
// it. Operation packages call it from init(). It panics on duplicate
// names, which indicates conflicting op libraries.
func RegisterFactory(name string, factory func() Operation) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("cmc: duplicate operation factory %q", name))
	}
	registry.factories[name] = factory
}

// Open instantiates a registered operation by name — the dlopen/dlsym
// analogue. Unknown names return ErrUnknownOp.
func Open(name string) (Operation, error) {
	registry.RLock()
	factory, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOp, name)
	}
	return factory(), nil
}

// Names lists the registered operation names in sorted order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
