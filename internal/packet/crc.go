package packet

import (
	"encoding/binary"
	"hash/crc32"
)

// The HMC specification protects every packet with a 32-bit CRC using the
// Koopman polynomial (0x741B8CD7). The CRC is computed over the entire
// packet, little-endian byte order, with the 32-bit CRC field of the tail
// set to zero, and is stored in tail bits [63:32].
var koopmanTable = crc32.MakeTable(crc32.Koopman)

// packetCRC computes the packet CRC over the word-level wire form. The
// caller must pass the packet with the tail CRC field still zero.
func packetCRC(words []uint64) uint32 {
	var buf [8]byte
	crc := uint32(0)
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], w)
		crc = crc32.Update(crc, koopmanTable, buf[:])
	}
	return crc
}

// crcWithTailZeroed computes the packet CRC of an encoded packet whose
// tail already carries a CRC, by zeroing the CRC field for the
// computation.
func crcWithTailZeroed(words []uint64) uint32 {
	var buf [8]byte
	crc := uint32(0)
	last := len(words) - 1
	for i, w := range words {
		if i == last {
			w &= 0x00000000FFFFFFFF
		}
		binary.LittleEndian.PutUint64(buf[:], w)
		crc = crc32.Update(crc, koopmanTable, buf[:])
	}
	return crc
}
