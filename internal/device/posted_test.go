package device

import (
	"testing"

	"repro/internal/cmc"
	"repro/internal/config"
	"repro/internal/hmccmd"
	"repro/internal/packet"
)

// postedNotify is a posted CMC operation (rsp_len 0): it increments the
// block's low word and returns nothing.
type postedNotify struct{}

func (postedNotify) Register() cmc.Descriptor {
	return cmc.Descriptor{
		OpName: "test_posted_notify", Rqst: hmccmd.CMC62, Cmd: 62,
		RqstLen: 2, RspLen: 0, RspCmd: hmccmd.RspNone,
	}
}
func (postedNotify) Str() string { return "test_posted_notify" }
func (postedNotify) Execute(ctx *cmc.ExecContext) error {
	base := ctx.Addr &^ 0xF
	v, err := ctx.Mem.ReadUint64(base)
	if err != nil {
		return err
	}
	return ctx.Mem.WriteUint64(base, v+ctx.RqstPayload[0])
}

// TestPostedCMCOperation: a CMC op registered with rsp_len 0 executes
// without generating a response packet (the optional-response behaviour
// of paper §IV-C1).
func TestPostedCMCOperation(t *testing.T) {
	d := newDev(t, config.FourLink4GB())
	if err := d.CMC().Load(postedNotify{}); err != nil {
		t.Fatal(err)
	}
	r := &packet.Rqst{Cmd: hmccmd.CMC62, LNG: 2, ADRS: 0x40, TAG: 1, Payload: []uint64{5, 0}}
	if err := d.Send(0, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d.Clock()
		if _, ok := d.Recv(0); ok {
			t.Fatal("posted CMC op produced a response")
		}
	}
	if v, _ := d.Store().ReadUint64(0x40); v != 5 {
		t.Fatalf("posted CMC op not applied: %d", v)
	}
	if got := d.Stats().RqstsOfClass(hmccmd.ClassCMC); got != 1 {
		t.Errorf("CMC rqsts = %d", got)
	}
}

// TestPostedAtomicBadAddressDropsSilently: posted atomics to invalid
// addresses cannot report an error response; they drop, latching the
// fault in the ERR register.
func TestPostedAtomicBadAddressDropsSilently(t *testing.T) {
	d := newDev(t, config.FourLink4GB())
	r := &packet.Rqst{Cmd: hmccmd.PINC8, ADRS: 3, TAG: 1} // misaligned
	if err := d.Send(0, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d.Clock()
		if _, ok := d.Recv(0); ok {
			t.Fatal("posted atomic produced a response")
		}
	}
	v, err := d.Regs().Read(RegERR)
	if err != nil || v&ErrBitAMOFault == 0 {
		t.Errorf("ERR = %#x, %v; want AMO fault latched", v, err)
	}
}

// TestModeUnknownRegister: MD_RD of a nonexistent register errors.
func TestModeUnknownRegister(t *testing.T) {
	d := newDev(t, config.FourLink4GB())
	rsp, _ := roundTrip(t, d, &packet.Rqst{Cmd: hmccmd.MDRD, ADRS: 0x7F, TAG: 2})
	if rsp.Cmd != hmccmd.RspError || rsp.ERRSTAT != ErrstatBadAddr {
		t.Fatalf("MD_RD of bogus register: %+v", rsp)
	}
}

// TestPostedWriteBlockViolationDrops: a posted write violating the block
// size has no response channel; the packet is consumed.
func TestPostedWriteBlockViolation(t *testing.T) {
	d := newDev(t, config.FourLink4GB()) // 64-byte max block
	r := &packet.Rqst{Cmd: hmccmd.PWR128, ADRS: 0, TAG: 3, Payload: make([]uint64, 16)}
	if err := d.Send(0, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d.Clock()
		if rsp, ok := d.Recv(0); ok {
			t.Fatalf("posted violation produced a response: %+v", rsp)
		}
	}
	// Nothing was written, and the fault is latched in ERR.
	if v, _ := d.Store().ReadUint64(0); v != 0 {
		t.Fatalf("violating posted write stored data: %#x", v)
	}
	if v, _ := d.Regs().Read(RegERR); v&ErrBitAccessFault == 0 {
		t.Errorf("ERR = %#x; access fault not latched", v)
	}
}
