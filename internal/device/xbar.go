package device

import (
	"repro/internal/config"
	"repro/internal/queue"
)

// Crossbar models the logic-layer switch connecting links to vaults. It
// keeps one request queue and one response queue per link (paper §V-B:
// "a logic-layer crossbar queue depth of 128 slots"); the additional
// queues of an 8-link device are the source of its extra buffering
// capacity — the mechanism the paper credits for the 8Link device's
// slightly better behaviour beyond fifty threads (§V-C).
//
// The queues are held by value with lazily materialized ring buffers;
// callers index them through pointers (&x.rqst[i]) so statistics
// accumulate in place.
type Crossbar struct {
	rqst []queue.Queue[*Flight]
	rsp  []queue.Queue[*Flight]
}

func (x *Crossbar) init(cfg config.Config) {
	x.rqst = make([]queue.Queue[*Flight], cfg.Links)
	x.rsp = make([]queue.Queue[*Flight], cfg.Links)
	for i := 0; i < cfg.Links; i++ {
		x.rqst[i].Init(cfg.XbarDepth)
		x.rsp[i].Init(cfg.XbarDepth)
	}
}

// RqstStats returns the request-queue statistics for one link port.
func (x *Crossbar) RqstStats(link int) queue.Stats { return x.rqst[link].Stats() }

// RspStats returns the response-queue statistics for one link port.
func (x *Crossbar) RspStats(link int) queue.Stats { return x.rsp[link].Stats() }

// TotalOccupancy returns the summed occupancy of all crossbar queues.
func (x *Crossbar) TotalOccupancy() int {
	n := 0
	for i := range x.rqst {
		n += x.rqst[i].Len() + x.rsp[i].Len()
	}
	return n
}
