package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/hmccmd"
	"repro/internal/packet"
)

// rqstEqual compares two requests field by field (structs holding slices
// cannot use ==).
func rqstEqual(a, b *packet.Rqst) bool {
	if !reflect.DeepEqual(a.Payload, b.Payload) &&
		!(len(a.Payload) == 0 && len(b.Payload) == 0) {
		return false
	}
	ac, bc := *a, *b
	ac.Payload, bc.Payload = nil, nil
	return reflect.DeepEqual(ac, bc)
}

// TestScratchMatchesBuilders pins every ReqScratch builder to the
// allocating builder it mirrors, reusing one scratch across calls with
// dirty state in between.
func TestScratchMatchesBuilders(t *testing.T) {
	var sc ReqScratch

	dirty := func() {
		// Leave stale state behind so a builder that forgets a field
		// shows up.
		pl := sc.Payload(packet.MaxPayloadWords)
		for i := range pl {
			pl[i] = 0xDEAD_BEEF_0000 + uint64(i)
		}
		sc.req = packet.Rqst{Cmd: hmccmd.RD256, CUB: 3, ADRS: ^uint64(0), TAG: 999, LNG: 17, SLID: 3, Payload: pl}
	}

	for _, n := range []int{16, 32, 48, 64, 80, 96, 112, 128, 256} {
		dirty()
		want, err := BuildRead(2, 0x1234, 7, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.BuildRead(2, 0x1234, 7, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		if !rqstEqual(got, want) {
			t.Fatalf("BuildRead(%d): got %+v, want %+v", n, got, want)
		}

		for _, posted := range []bool{false, true} {
			dirty()
			data := make([]uint64, n/8)
			for i := range data {
				data[i] = uint64(i) * 3
			}
			want, err = BuildWrite(1, 0x40, 5, 2, data, posted)
			if err != nil {
				t.Fatal(err)
			}
			got, err = sc.BuildWrite(1, 0x40, 5, 2, data, posted)
			if err != nil {
				t.Fatal(err)
			}
			if !rqstEqual(got, want) {
				t.Fatalf("BuildWrite(%d,posted=%v): got %+v, want %+v", n, posted, got, want)
			}
		}
	}

	dirty()
	want, err := BuildAtomic(hmccmd.XOR16, 0, 0x80, 3, 0, []uint64{0xAA, 0xBB})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.BuildAtomic(hmccmd.XOR16, 0, 0x80, 3, 0, []uint64{0xAA, 0xBB})
	if err != nil {
		t.Fatal(err)
	}
	if !rqstEqual(got, want) {
		t.Fatalf("BuildAtomic: got %+v, want %+v", got, want)
	}

	dirty()
	want, err = BuildCMC(hmccmd.CMC125, 0, 0x10, 2, 0, []uint64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err = sc.BuildCMC(hmccmd.CMC125, 0, 0x10, 2, 0, []uint64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !rqstEqual(got, want) {
		t.Fatalf("BuildCMC: got %+v, want %+v", got, want)
	}
}

// TestScratchValidation mirrors the builder error paths.
func TestScratchValidation(t *testing.T) {
	var sc ReqScratch
	if _, err := sc.BuildRead(0, 0, 0, 0, 17); !errors.Is(err, ErrBadSize) {
		t.Fatalf("BuildRead(17): %v", err)
	}
	if _, err := sc.BuildWrite(0, 0, 0, 0, make([]uint64, 3), false); !errors.Is(err, ErrBadSize) {
		t.Fatalf("BuildWrite(24B): %v", err)
	}
	if _, err := sc.BuildAtomic(hmccmd.RD16, 0, 0, 0, 0, nil); err == nil {
		t.Fatal("BuildAtomic(RD16) should fail")
	}
	if _, err := sc.BuildAtomic(hmccmd.XOR16, 0, 0, 0, 0, []uint64{1}); err == nil {
		t.Fatal("BuildAtomic with short payload should fail")
	}
	if _, err := sc.BuildCMC(hmccmd.RD16, 0, 0, 0, 0, nil); err == nil {
		t.Fatal("BuildCMC(RD16) should fail")
	}
	if _, err := sc.BuildCMC(hmccmd.CMC125, 0, 0, 0, 0, []uint64{1}); err == nil {
		t.Fatal("BuildCMC with odd payload should fail")
	}
}

// TestScratchPayloadIdiom checks the zero-copy Payload path: the slice
// handed out is the one the built request carries.
func TestScratchPayloadIdiom(t *testing.T) {
	var sc ReqScratch
	pl := sc.Payload(2)
	pl[0], pl[1] = 11, 22
	r, err := sc.BuildWrite(0, 0x100, 1, 0, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	if &r.Payload[0] != &pl[0] {
		t.Fatal("payload was copied out of the scratch buffer")
	}
	if r.Payload[0] != 11 || r.Payload[1] != 22 {
		t.Fatalf("payload content: %v", r.Payload)
	}
	if !sc.Owns(r) {
		t.Fatal("Owns must recognize the scratch's own request")
	}
	if sc.Owns(&packet.Rqst{}) {
		t.Fatal("Owns must reject a foreign request")
	}
}

// TestScratchReuseThroughSend drives two writes and a read through one
// scratch against a live device, proving the adoption contract end to
// end: reusing the scratch immediately after Send must not corrupt the
// first request.
func TestScratchReuseThroughSend(t *testing.T) {
	s, err := New(config.FourLink4GB())
	if err != nil {
		t.Fatal(err)
	}
	var sc ReqScratch

	roundTrip := func(r *packet.Rqst) *packet.Rsp {
		t.Helper()
		if err := s.Send(0, r); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 16; c++ {
			s.Clock()
			if rsp, ok := s.Recv(0); ok {
				return rsp
			}
		}
		t.Fatal("no response within 16 cycles")
		return nil
	}

	pl := sc.Payload(2)
	pl[0], pl[1] = 0x1111, 0x2222
	w1, err := sc.BuildWrite(0, 0x100, 1, 0, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, w1); err != nil {
		t.Fatal(err)
	}
	// Immediately rebuild on the same scratch: a second write elsewhere.
	pl = sc.Payload(2)
	pl[0], pl[1] = 0x3333, 0x4444
	w2, err := sc.BuildWrite(0, 0x200, 2, 0, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	ReleaseRsp(roundTrip(w2))
	for c := 0; c < 16; c++ {
		if rsp, ok := s.Recv(0); ok {
			ReleaseRsp(rsp)
			break
		}
		s.Clock()
	}

	rd, err := sc.BuildRead(0, 0x100, 3, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	rsp := roundTrip(rd)
	if rsp.Payload[0] != 0x1111 || rsp.Payload[1] != 0x2222 {
		t.Fatalf("memory at 0x100: %#x %#x, want 0x1111 0x2222", rsp.Payload[0], rsp.Payload[1])
	}
	ReleaseRsp(rsp)
}

// TestSimWireRoundTrip drives the simulator-level encoded-packet API.
func TestSimWireRoundTrip(t *testing.T) {
	s, err := New(config.FourLink4GB())
	if err != nil {
		t.Fatal(err)
	}
	wr := &packet.Rqst{Cmd: hmccmd.WR16, ADRS: 0x500, TAG: 4, Payload: []uint64{7, 8}}
	words, err := wr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SendWire(0, words); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for c := 0; c < 16 && got == nil; c++ {
		s.Clock()
		got, _ = s.RecvWire(0)
	}
	if got == nil {
		t.Fatal("no wire response within 16 cycles")
	}
	rsp, err := packet.DecodeRsp(got)
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Cmd != hmccmd.WrRS || rsp.TAG != 4 || rsp.ERRSTAT != 0 {
		t.Fatalf("write response: %+v", rsp)
	}

	// Corrupt packets must be rejected before reaching the device.
	words[0] ^= 1 << 24
	if err := s.SendWire(0, words); !errors.Is(err, packet.ErrBadCRC) {
		t.Fatalf("SendWire on corrupt packet: %v, want ErrBadCRC", err)
	}
}
