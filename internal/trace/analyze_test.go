package trace

import (
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Cycle: 2, Kind: LevelRqst, Vault: 3, Cmd: "RD16", Tag: 1},
		{Cycle: 2, Kind: LevelRqst, Vault: 3, Cmd: "WR64", Tag: 2},
		{Cycle: 3, Kind: LevelRqst, Vault: 7, Cmd: "RD16", Tag: 3},
		{Cycle: 4, Kind: LevelCMC, Vault: 3, Cmd: "hmc_lock", Tag: 4},
		{Cycle: 5, Kind: LevelLatency, Vault: -1, Cmd: "RD16", Value: 3},
		{Cycle: 6, Kind: LevelLatency, Vault: -1, Cmd: "RD16", Value: 5},
		{Cycle: 7, Kind: LevelStall, Vault: -1, Cmd: "WR64"},
	}
}

func TestAnalyzeBasics(t *testing.T) {
	a := Analyze(sampleEvents())
	if a.Events != 7 || a.FirstCycle != 2 || a.LastCycle != 7 {
		t.Errorf("bounds: %+v", a)
	}
	if a.ByKind["RQST"] != 3 || a.ByKind["CMC"] != 1 || a.ByKind["LATENCY"] != 2 {
		t.Errorf("ByKind: %v", a.ByKind)
	}
	if a.ByCmd["RD16"] != 4 || a.ByCmd["WR64"] != 2 || a.ByCmd["hmc_lock"] != 1 {
		t.Errorf("ByCmd: %v", a.ByCmd)
	}
	if a.CMCByName["hmc_lock"] != 1 {
		t.Errorf("CMCByName: %v", a.CMCByName)
	}
	if a.ByVault[3] != 2 || a.ByVault[7] != 1 {
		t.Errorf("ByVault: %v", a.ByVault)
	}
	if a.Latency.N() != 2 || a.Latency.Min() != 3 || a.Latency.Max() != 5 {
		t.Errorf("Latency: %v", a.Latency.String())
	}
	if a.Stalls != 1 {
		t.Errorf("Stalls = %d", a.Stalls)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Events != 0 {
		t.Errorf("events = %d", a.Events)
	}
	if got := a.Report(5); got != "empty trace\n" {
		t.Errorf("Report = %q", got)
	}
}

func TestSortedCounts(t *testing.T) {
	got := SortedCounts(map[string]int{"b": 2, "a": 2, "c": 9})
	if got[0].Key != "c" || got[1].Key != "a" || got[2].Key != "b" {
		t.Errorf("order: %v", got)
	}
}

func TestHottestVaults(t *testing.T) {
	a := Analyze(sampleEvents())
	hot := a.HottestVaults(1)
	if len(hot) != 1 || hot[0].Key != "vault 3" || hot[0].Count != 2 {
		t.Errorf("hottest: %v", hot)
	}
}

func TestReportContents(t *testing.T) {
	rep := Analyze(sampleEvents()).Report(10)
	for _, want := range []string{
		"7 events over cycles 2..7",
		"hmc_lock",
		"round-trip latency: min=3 max=5",
		"vault 3",
		"p50 <=",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestAnalyzeFillsKindNameWhenMissing(t *testing.T) {
	// Events straight from a Recorder carry KindName; raw events do not.
	a := Analyze([]Event{{Kind: LevelBank}})
	if a.ByKind["BANK"] != 1 {
		t.Errorf("ByKind: %v", a.ByKind)
	}
}

// TestParseJSONLEmptyThroughAnalysis pins the hmc-trace flow for an
// empty trace file: zero events parse cleanly and the analysis report
// degrades to its empty form.
func TestParseJSONLEmptyThroughAnalysis(t *testing.T) {
	events, err := ParseJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty file: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("parsed %d events from empty file", len(events))
	}
	if got := Analyze(events).Report(10); got != "empty trace\n" {
		t.Fatalf("Report = %q", got)
	}
}
