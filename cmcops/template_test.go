package cmcops

import (
	"errors"
	"testing"

	"repro/internal/cmc"
	"repro/internal/hmccmd"
	"repro/internal/mem"
)

func fetchAddTemplate() Template {
	return Template{
		Name:    "tmpl_fetchadd",
		Rqst:    hmccmd.CMC85,
		RqstLen: 2,
		RspLen:  2,
		RspCmd:  hmccmd.RdRS,
		Fn: func(ctx *cmc.ExecContext) error {
			addr := ctx.Addr &^ 0x7
			v, err := ctx.Mem.ReadUint64(addr)
			if err != nil {
				return err
			}
			ctx.RspPayload[0] = v
			return ctx.Mem.WriteUint64(addr, v+ctx.RqstPayload[0])
		},
	}
}

func TestTemplateDescriptorConsistentByConstruction(t *testing.T) {
	d := fetchAddTemplate().Register()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table III's "cmd must match rqst" rule cannot be violated.
	if d.Cmd != uint32(hmccmd.CMC85.Code()) {
		t.Errorf("cmd = %d", d.Cmd)
	}
	if d.OpName != "tmpl_fetchadd" || fetchAddTemplate().Str() != "tmpl_fetchadd" {
		t.Error("name plumbing broken")
	}
}

func TestTemplateLoadsAndExecutes(t *testing.T) {
	table := cmc.NewTable()
	op := fetchAddTemplate()
	if err := table.Load(op); err != nil {
		t.Fatal(err)
	}
	store := mem.New(1 << 12)
	_ = store.WriteUint64(0x20, 40)
	ctx := &cmc.ExecContext{Addr: 0x20, RqstPayload: []uint64{2, 0}, Mem: store}
	slot, err := table.Execute(op.Rqst.Code(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if slot.Op.Str() != "tmpl_fetchadd" {
		t.Errorf("slot name %q", slot.Op.Str())
	}
	if ctx.RspPayload[0] != 40 {
		t.Errorf("returned %d", ctx.RspPayload[0])
	}
	if v, _ := store.ReadUint64(0x20); v != 42 {
		t.Errorf("memory %d", v)
	}
}

func TestTemplateErrorPropagates(t *testing.T) {
	op := Template{
		Name: "tmpl_fail", Rqst: hmccmd.CMC86, RqstLen: 1, RspLen: 1, RspCmd: hmccmd.WrRS,
		Fn: func(*cmc.ExecContext) error { return errors.New("boom") },
	}
	table := cmc.NewTable()
	if err := table.Load(op); err != nil {
		t.Fatal(err)
	}
	if _, err := table.Execute(op.Rqst.Code(), &cmc.ExecContext{Mem: mem.New(64)}); err == nil {
		t.Error("error swallowed")
	}
}

func TestTemplateRejectsArchitectedSlot(t *testing.T) {
	op := Template{Name: "bad", Rqst: hmccmd.WR64, RqstLen: 1, RspLen: 1, RspCmd: hmccmd.WrRS,
		Fn: func(*cmc.ExecContext) error { return nil }}
	if err := cmc.NewTable().Load(op); !errors.Is(err, cmc.ErrNotCMCSlot) {
		t.Errorf("Load: %v", err)
	}
}
