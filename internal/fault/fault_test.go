package fault

import (
	"math"
	"testing"
)

func TestParseKinds(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", All, false},
		{"all", All, false},
		{"none", 0, false},
		{"crc", CRC, false},
		{"crc,drop", CRC | Drop, false},
		{" flip , down ", Flip | Down, false},
		{"crc,flip,drop,down", All, false},
		{"bogus", 0, true},
		{"crc,bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseKinds(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseKinds(%q): want error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseKinds(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if s := (CRC | Drop).String(); s != "crc,drop" {
		t.Errorf("String = %q", s)
	}
	if s := Kind(0).String(); s != "none" {
		t.Errorf("zero String = %q", s)
	}
	if s := All.String(); s != "crc,flip,drop,down" {
		t.Errorf("All String = %q", s)
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Rate: 0.5}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Plan{Rate: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Plan{Rate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (Plan{Rate: math.NaN()}).Validate(); err == nil {
		t.Error("NaN rate accepted")
	}
	if (Plan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	if !(Plan{Rate: 0.01}).Enabled() {
		t.Error("1% plan disabled")
	}
	if (Plan{Rate: 0.5, Kinds: 0}).EffectiveKinds() != All {
		t.Error("zero kinds should mean All")
	}
}

// TestInjectorDeterminism: identical plans and streams produce identical
// fault sequences; different seeds or streams diverge.
func TestInjectorDeterminism(t *testing.T) {
	p := Plan{Rate: 0.05, Seed: 42}
	a := p.Injector(3)
	b := p.Injector(3)
	for i := 0; i < 10000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d: %v != %v", i, ka, kb)
		}
	}
	if a.Total() == 0 {
		t.Fatal("5% rate fired nothing in 10k draws")
	}

	c := Plan{Rate: 0.05, Seed: 43}.Injector(3)
	d := p.Injector(4)
	sameSeed, sameStream := 0, 0
	a2 := p.Injector(3)
	for i := 0; i < 10000; i++ {
		ka := a2.Next()
		if ka == c.Next() {
			sameSeed++
		}
		if ka == d.Next() {
			sameStream++
		}
	}
	if sameSeed == 10000 {
		t.Error("different seeds produced identical sequences")
	}
	if sameStream == 10000 {
		t.Error("different streams produced identical sequences")
	}
}

// TestInjectorRate: the empirical fault rate tracks Plan.Rate.
func TestInjectorRate(t *testing.T) {
	const n = 200000
	in := Plan{Rate: 0.01, Seed: 7}.Injector(0)
	faults := 0
	for i := 0; i < n; i++ {
		if in.Next() != 0 {
			faults++
		}
	}
	got := float64(faults) / n
	if got < 0.007 || got > 0.013 {
		t.Errorf("empirical rate %.4f, want ~0.01", got)
	}
}

// TestInjectorKindsRestricted: only enabled kinds ever fire, and all
// enabled kinds eventually fire.
func TestInjectorKindsRestricted(t *testing.T) {
	in := Plan{Rate: 0.5, Seed: 1, Kinds: CRC | Drop}.Injector(0)
	seen := Kind(0)
	for i := 0; i < 10000; i++ {
		k := in.Next()
		if k != 0 && k != CRC && k != Drop {
			t.Fatalf("disabled kind %v fired", k)
		}
		seen |= k
	}
	if seen != CRC|Drop {
		t.Errorf("kinds seen = %v, want crc,drop", seen)
	}
}

// TestInjectorExtremes: rate 0 never fires; rate 1 always fires.
func TestInjectorExtremes(t *testing.T) {
	never := Plan{Rate: 0, Seed: 9}.Injector(0)
	always := Plan{Rate: 1, Seed: 9}.Injector(0)
	for i := 0; i < 1000; i++ {
		if never.Next() != 0 {
			t.Fatal("rate 0 fired")
		}
		if always.Next() == 0 {
			t.Fatal("rate 1 missed")
		}
	}
}

func TestPlanDefaults(t *testing.T) {
	p := Plan{Rate: 0.1}
	if p.EffectiveDownCycles() != DefaultDownCycles {
		t.Error("down default")
	}
	if p.EffectiveDropTimeout() != DefaultDropTimeoutCycles {
		t.Error("drop default")
	}
	p.DownCycles, p.DropTimeoutCycles = 7, 9
	if p.EffectiveDownCycles() != 7 || p.EffectiveDropTimeout() != 9 {
		t.Error("explicit windows ignored")
	}
}

func BenchmarkInjectorNext(b *testing.B) {
	in := Plan{Rate: 0.01, Seed: 1}.Injector(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = in.Next()
	}
}
