package server

import (
	"net"
	"testing"

	_ "repro/cmcops"
	"repro/internal/hmccmd"
)

// BenchmarkServerOpRoundTrip measures one full wire round trip — encode,
// pipe, decode, shard dispatch, simulator clock, response encode, pipe,
// decode — against a warm session. This is the per-operation floor of
// the co-simulation path.
func BenchmarkServerOpRoundTrip(b *testing.B) {
	srv := New(Config{Shards: 1})
	defer srv.Close()
	here, there := net.Pipe()
	srv.ServeConn(there)
	cl := NewClient(here)
	defer cl.Close()
	sess, err := cl.Init("4link-4gb")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cl.Clock(sess); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Clock(sess); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerSendRecvRoundTrip measures a full request round trip:
// send a read, run the clock until the response surfaces, receive it.
func BenchmarkServerSendRecvRoundTrip(b *testing.B) {
	srv := New(Config{Shards: 1})
	defer srv.Close()
	here, there := net.Pipe()
	srv.ServeConn(there)
	cl := NewClient(here)
	defer cl.Close()
	sess, err := cl.Init("4link-4gb")
	if err != nil {
		b.Fatal(err)
	}
	rd := hmccmd.RD64.Code()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := cl.Send(sess, i%4, rd, 0, uint64(i%64)*64, uint16(i%2047+1), nil)
		if err != nil || !acc {
			b.Fatalf("send: accepted=%v err=%v", acc, err)
		}
		if _, avail, err := cl.ClockUntilRecv(sess, 8192); err != nil || !avail {
			b.Fatalf("clock_until_recv: avail=%v err=%v", avail, err)
		}
		rsp, err := cl.Recv(sess, i%4)
		if err != nil || !rsp.Have {
			b.Fatalf("recv: have=%v err=%v", rsp.Have, err)
		}
	}
}

// BenchmarkServerBatchedSendRecv measures the same send→drain→recv
// round as BenchmarkServerSendRecvRoundTrip issued as one batch frame,
// in each wire encoding — one round trip instead of three.
func BenchmarkServerBatchedSendRecv(b *testing.B) {
	for _, proto := range []string{ProtoJSON, ProtoBinary} {
		b.Run(proto, func(b *testing.B) {
			srv := New(Config{Shards: 1})
			defer srv.Close()
			here, there := net.Pipe()
			srv.ServeConn(there)
			cl := NewClient(here)
			defer cl.Close()
			if err := cl.Hello(proto); err != nil {
				b.Fatal(err)
			}
			sess, err := cl.Init("4link-4gb")
			if err != nil {
				b.Fatal(err)
			}
			rd := hmccmd.RD64.Code()
			bt := cl.NewBatch(sess)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.Begin(sess)
				bt.Send(i%4, rd, 0, uint64(i%64)*64, uint16(i%2047+1), nil)
				bt.ClockUntilRecv(8192)
				bt.Recv(i % 4)
				rsps, err := bt.Do()
				if err != nil {
					b.Fatal(err)
				}
				if !rsps[0].Accepted || !rsps[2].Have {
					b.Fatalf("round %d failed: %+v", i, rsps)
				}
			}
		})
	}
}

// BenchmarkServerSessionChurn measures init+close against a warm
// simulator pool — the allocation-free session recycling path the
// many-thousand-session harness leans on.
func BenchmarkServerSessionChurn(b *testing.B) {
	srv := New(Config{Shards: 1})
	defer srv.Close()
	here, there := net.Pipe()
	srv.ServeConn(there)
	cl := NewClient(here)
	defer cl.Close()
	// Warm the pool with one build/release cycle.
	sess, err := cl.Init("4link-4gb")
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.CloseSession(sess); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := cl.Init("4link-4gb")
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.CloseSession(sess); err != nil {
			b.Fatal(err)
		}
	}
}
