package cmcops

import (
	"testing"
	"testing/quick"

	"repro/internal/cmc"
	"repro/internal/hmccmd"
	"repro/internal/mem"
)

func TestPopCount16(t *testing.T) {
	store := mem.New(1 << 12)
	_ = store.WriteBlock(0x20, mem.Block{Lo: 0b1011, Hi: 0xFF})
	op := PopCount16{}
	d := op.Register()
	if d.RspCmd != hmccmd.RspCMC || d.RspCmdCode != PopCountRspCode {
		t.Fatalf("descriptor %+v must use a custom RSP_CMC code", d)
	}
	ctx := &cmc.ExecContext{Addr: 0x20, RspPayload: make([]uint64, 2), Mem: store}
	if err := op.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.RspPayload[0] != 3+8 {
		t.Errorf("popcount = %d, want 11", ctx.RspPayload[0])
	}
}

func TestPopCount16Quick(t *testing.T) {
	store := mem.New(1 << 12)
	op := PopCount16{}
	f := func(lo, hi uint64) bool {
		if err := store.WriteBlock(0, mem.Block{Lo: lo, Hi: hi}); err != nil {
			return false
		}
		ctx := &cmc.ExecContext{Addr: 0, RspPayload: make([]uint64, 2), Mem: store}
		if err := op.Execute(ctx); err != nil {
			return false
		}
		want := uint64(0)
		for v := lo; v != 0; v &= v - 1 {
			want++
		}
		for v := hi; v != 0; v &= v - 1 {
			want++
		}
		return ctx.RspPayload[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxSwap64(t *testing.T) {
	store := mem.New(1 << 12)
	_ = store.WriteUint64(8, 50)
	op := MaxSwap64{}
	run := func(cand uint64) uint64 {
		ctx := &cmc.ExecContext{
			Addr:        8,
			RqstPayload: []uint64{cand, 0},
			RspPayload:  make([]uint64, 2),
			Mem:         store,
		}
		if err := op.Execute(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.RspPayload[0]
	}
	if old := run(30); old != 50 {
		t.Errorf("returned %d, want 50", old)
	}
	if v, _ := store.ReadUint64(8); v != 50 {
		t.Errorf("smaller candidate overwrote max: %d", v)
	}
	if old := run(99); old != 50 {
		t.Errorf("returned %d, want 50", old)
	}
	if v, _ := store.ReadUint64(8); v != 99 {
		t.Errorf("larger candidate not stored: %d", v)
	}
}

func TestVisitNode(t *testing.T) {
	store := mem.New(1 << 12)
	op := VisitNode{}
	run := func(tid uint64) uint64 {
		ctx := &cmc.ExecContext{
			Addr:        0x10,
			RqstPayload: []uint64{tid, 0},
			RspPayload:  make([]uint64, 2),
			Mem:         store,
		}
		if err := op.Execute(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.RspPayload[0]
	}
	if got := run(4); got != RetSuccess {
		t.Fatalf("first visit returned %d", got)
	}
	if got := run(5); got != RetFailure {
		t.Fatalf("second visit returned %d", got)
	}
	blk, _ := store.ReadBlock(0x10)
	if blk.Lo != 1 || blk.Hi != 4 {
		t.Errorf("visit state %+v, want claimed by 4", blk)
	}
}

func TestDemoDescriptorsValid(t *testing.T) {
	for _, op := range []cmc.Operation{PopCount16{}, MaxSwap64{}, VisitNode{}} {
		if err := op.Register().Validate(); err != nil {
			t.Errorf("%s: %v", op.Str(), err)
		}
	}
}

func TestAllOpsLoadIntoOneTable(t *testing.T) {
	// The paper's "creative experimentation" requirement: disparate
	// combinations of CMC operations coexist in one simulation.
	table := cmc.NewTable()
	for _, op := range []cmc.Operation{Lock{}, TryLock{}, Unlock{}, PopCount16{}, MaxSwap64{}, VisitNode{}} {
		if err := table.Load(op); err != nil {
			t.Fatalf("%s: %v", op.Str(), err)
		}
	}
	if table.Count() != 6 {
		t.Errorf("Count() = %d", table.Count())
	}
}
