package span

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hmccmd"
	"repro/internal/stats"
)

// StageID names one latency stage — the interval between two
// consecutive stage-transition events of a request. Stage cycles
// telescope: summed over a closed span they equal the end-to-end
// latency exactly, because every stage event closes the delta since the
// previous one and markers never advance the clock.
type StageID uint8

// The pipeline stages, in request order.
const (
	// StageHostSend is the span-opening instant (always 0 cycles; kept
	// so every event maps to a stage).
	StageHostSend StageID = iota
	// StageLink is host-link queue wait plus request FLIT serialization
	// (HostSend → LinkIngress).
	StageLink
	// StageXbar is crossbar request-queue wait and arbitration
	// (LinkIngress → VaultEnq).
	StageXbar
	// StageVault is vault-queue wait, bank-timing wait and execution
	// (VaultEnq → Execute).
	StageVault
	// StageRspVault is response-queue wait in the vault
	// (Execute → RspXbar).
	StageRspVault
	// StageRspLink is crossbar response drain plus response FLIT
	// serialization (RspXbar → RspEgress).
	StageRspLink
	// StageHostDrain is host-link response-queue wait until the host
	// pops (RspEgress → HostRecv).
	StageHostDrain
	// StageTopoHop is inter-cube request forwarding delay
	// (TopoForward → remote HostSend).
	StageTopoHop
	// StageTopoReturn is inter-cube response return delay
	// (remote HostRecv → TopoArrive).
	StageTopoReturn

	numStages
)

var stageNames = [numStages]string{
	StageHostSend:   "host_send",
	StageLink:       "link",
	StageXbar:       "xbar",
	StageVault:      "vault",
	StageRspVault:   "rsp_vault",
	StageRspLink:    "rsp_link",
	StageHostDrain:  "host_drain",
	StageTopoHop:    "topo_hop",
	StageTopoReturn: "topo_return",
}

// String returns the stage's name.
func (s StageID) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// NumStages is the number of latency stages.
const NumStages = int(numStages)

// stageOf maps a stage-transition event kind to the stage the elapsed
// cycles belong to. A HostSend on a forwarded request ends the
// inter-cube hop; otherwise it opens the span (zero-width).
func stageOf(kind Kind, forwarded bool) StageID {
	switch kind {
	case KindHostSend:
		if forwarded {
			return StageTopoHop
		}
		return StageHostSend
	case KindLinkIngress:
		return StageLink
	case KindVaultEnq:
		return StageXbar
	case KindExecute:
		return StageVault
	case KindRspXbar:
		return StageRspVault
	case KindRspEgress:
		return StageRspLink
	case KindHostRecv:
		return StageHostDrain
	case KindTopoForward:
		return StageHostSend // opens (or re-opens a hop chain): zero-width
	case KindTopoArrive:
		return StageTopoReturn
	}
	return StageHostSend
}

// StageAttr aggregates one stage across all closed spans.
type StageAttr struct {
	// Stage identifies the interval.
	Stage StageID
	// Cycles is the total time attributed to the stage.
	Cycles uint64
	// Pct is Cycles as a share of all attributed cycles.
	Pct float64
	// Summary holds per-request min/max/avg for the stage.
	Summary stats.Summary
}

// ClassAttr summarizes end-to-end latency for one request class.
type ClassAttr struct {
	// Class is the command class (READ, WRITE, ATOMIC, CMC, ...).
	Class hmccmd.Class
	// Count is the number of closed spans in the class.
	Count uint64
	// P50 and P99 are latency percentiles (power-of-two bucket upper
	// bounds, matching the metrics histograms).
	P50, P99 uint64
	// Summary holds the class's min/max/avg end-to-end latency.
	Summary stats.Summary
}

// Attribution is the per-stage latency-attribution table built from a
// flight-recorder dump: where closed requests spent their cycles, and
// the latency distribution per request class.
type Attribution struct {
	// Stages lists every stage that accumulated cycles, pipeline order.
	Stages []StageAttr
	// Classes lists per-class latency distributions, by class value.
	Classes []ClassAttr
	// Spans is the number of closed spans attributed.
	Spans int
	// InFlight is the number of spans left open in the dump (excluded
	// from the table).
	InFlight int
	// TotalCycles is the summed end-to-end latency of all closed spans;
	// per-stage Cycles sum to it exactly.
	TotalCycles uint64
}

// spanAcc accumulates one in-progress span during the event scan.
type spanAcc struct {
	open      bool
	forwarded bool
	openCycle uint64
	lastCycle uint64
	class     uint8
	stages    [numStages]uint64
}

// Attribute builds the attribution table from a flight-recorder dump
// (oldest-first, as returned by Tracer.Events). Spans whose opening
// event was overwritten by the ring are skipped; spans still open at
// the end of the dump count as InFlight.
func Attribute(events []Event) *Attribution {
	var acc [numTags]spanAcc
	a := &Attribution{}
	var stages [numStages]struct {
		cycles uint64
		sum    stats.Summary
	}
	classes := make(map[uint8]*struct {
		hist stats.Histogram
		sum  stats.Summary
	})

	closeSpan := func(s *spanAcc, cycle uint64) {
		lat := cycle - s.openCycle
		a.Spans++
		a.TotalCycles += lat
		for i := range s.stages {
			if s.stages[i] > 0 {
				stages[i].cycles += s.stages[i]
				stages[i].sum.Add(s.stages[i])
			}
		}
		c := classes[s.class]
		if c == nil {
			c = &struct {
				hist stats.Histogram
				sum  stats.Summary
			}{}
			classes[s.class] = c
		}
		c.hist.Add(lat)
		c.sum.Add(lat)
		s.open = false
	}

	for _, e := range events {
		if e.Kind.Marker() {
			continue
		}
		s := &acc[e.Tag&uint16(numTags-1)]
		opening := e.Kind == KindTopoForward || (e.Kind == KindHostSend && !s.open)
		if opening && !s.open {
			*s = spanAcc{open: true, forwarded: e.Kind == KindTopoForward,
				openCycle: e.Cycle, lastCycle: e.Cycle, class: e.Class}
			if e.Kind == KindHostSend {
				continue
			}
		}
		if !s.open {
			continue // opening event lost to ring wrap
		}
		s.stages[stageOf(e.Kind, s.forwarded)] += e.Cycle - s.lastCycle
		s.lastCycle = e.Cycle
		switch {
		case e.Kind == KindTopoArrive,
			e.Kind == KindHostRecv && !s.forwarded,
			e.Kind == KindExecute && e.Arg&ArgPosted != 0:
			closeSpan(s, e.Cycle)
		}
	}
	for i := range acc {
		if acc[i].open {
			a.InFlight++
		}
	}

	for s := StageID(0); s < numStages; s++ {
		if stages[s].cycles == 0 {
			continue
		}
		pct := 0.0
		if a.TotalCycles > 0 {
			pct = 100 * float64(stages[s].cycles) / float64(a.TotalCycles)
		}
		a.Stages = append(a.Stages, StageAttr{
			Stage: s, Cycles: stages[s].cycles, Pct: pct, Summary: stages[s].sum,
		})
	}
	for cls, c := range classes {
		a.Classes = append(a.Classes, ClassAttr{
			Class: hmccmd.Class(cls), Count: c.sum.N(),
			P50: c.hist.Percentile(50), P99: c.hist.Percentile(99),
			Summary: c.sum,
		})
	}
	sort.Slice(a.Classes, func(i, j int) bool { return a.Classes[i].Class < a.Classes[j].Class })
	return a
}

// Report renders the attribution table.
func (a *Attribution) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Span attribution: %d closed spans, %d in flight, %d total cycles\n",
		a.Spans, a.InFlight, a.TotalCycles)
	if len(a.Stages) > 0 {
		fmt.Fprintf(&b, "%-12s %12s %7s %10s %10s %10s\n",
			"stage", "cycles", "pct", "min", "max", "avg")
		for _, s := range a.Stages {
			fmt.Fprintf(&b, "%-12s %12d %6.1f%% %10d %10d %10.2f\n",
				s.Stage, s.Cycles, s.Pct, s.Summary.Min(), s.Summary.Max(), s.Summary.Avg())
		}
	}
	if len(a.Classes) > 0 {
		fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %10s\n",
			"class", "spans", "p50", "p99", "min", "max")
		for _, c := range a.Classes {
			fmt.Fprintf(&b, "%-12s %8d %10d %10d %10d %10d\n",
				c.Class, c.Count, c.P50, c.P99, c.Summary.Min(), c.Summary.Max())
		}
	}
	return b.String()
}
