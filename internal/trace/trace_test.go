package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestLevelString(t *testing.T) {
	if got := (LevelBank | LevelCMC).String(); got != "BANK+CMC" {
		t.Errorf("String() = %q", got)
	}
	if got := Level(0).String(); got != "NONE" {
		t.Errorf("zero level String() = %q", got)
	}
	if !strings.Contains(LevelAll.String(), "LATENCY") {
		t.Errorf("LevelAll missing LATENCY: %q", LevelAll.String())
	}
}

func TestParseLevel(t *testing.T) {
	l, err := ParseLevel("bank+cmc")
	if err != nil || l != LevelBank|LevelCMC {
		t.Errorf("ParseLevel(bank+cmc) = %v, %v", l, err)
	}
	l, err = ParseLevel("ALL")
	if err != nil || l != LevelAll {
		t.Errorf("ParseLevel(ALL) = %v, %v", l, err)
	}
	l, err = ParseLevel("none")
	if err != nil || l != 0 {
		t.Errorf("ParseLevel(none) = %v, %v", l, err)
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("ParseLevel(bogus) succeeded")
	}
}

func TestTextTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewText(&buf, LevelCMC|LevelLatency)
	tr.Emit(Event{Cycle: 9, Kind: LevelCMC, Dev: 0, Quad: 1, Vault: 2, Bank: 3, Cmd: "hmc_lock", Tag: 7, Addr: 0x40})
	tr.Emit(Event{Cycle: 10, Kind: LevelBank, Cmd: "suppressed"}) // filtered level
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hmc_lock") {
		t.Errorf("CMC op name missing from trace: %q", out)
	}
	if !strings.Contains(out, "CMC") {
		t.Errorf("kind name missing: %q", out)
	}
	if strings.Contains(out, "suppressed") {
		t.Errorf("filtered event leaked: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Errorf("want exactly one record, got %q", out)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf, LevelAll)
	want := []Event{
		{Cycle: 1, Kind: LevelRqst, Dev: 0, Quad: 2, Vault: 17, Bank: 4, Cmd: "WR64", Tag: 3, Addr: 0x1000},
		{Cycle: 5, Kind: LevelCMC, Dev: 0, Quad: 0, Vault: 0, Bank: 0, Cmd: "hmc_trylock", Tag: 4, Addr: 0x40, Value: 2},
		{Cycle: 6, Kind: LevelLatency, Dev: 0, Quad: 0, Vault: 0, Bank: 0, Cmd: "RD16", Tag: 5, Value: 6, Detail: "round trip"},
	}
	for _, e := range want {
		tr.Emit(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Cycle != want[i].Cycle || got[i].Cmd != want[i].Cmd || got[i].Value != want[i].Value {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[1].KindName != "CMC" {
		t.Errorf("KindName = %q", got[1].KindName)
	}
}

func TestParseJSONLError(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader("{bad json")); err == nil {
		t.Error("ParseJSONL accepted malformed input")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(LevelStall | LevelBank)
	r.Emit(Event{Kind: LevelStall, Cmd: "a"})
	r.Emit(Event{Kind: LevelBank, Cmd: "b"})
	r.Emit(Event{Kind: LevelCMC, Cmd: "c"}) // filtered
	if got := len(r.Events()); got != 2 {
		t.Fatalf("recorded %d events, want 2", got)
	}
	if got := r.OfKind(LevelBank); len(got) != 1 || got[0].Cmd != "b" {
		t.Errorf("OfKind(Bank) = %+v", got)
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	if n.Enabled(LevelAll) {
		t.Error("Nop.Enabled reported true")
	}
	n.Emit(Event{}) // must not panic
}

func TestEnabledGating(t *testing.T) {
	tr := NewText(&bytes.Buffer{}, LevelLatency)
	if tr.Enabled(LevelBank) {
		t.Error("Enabled(Bank) = true for latency-only tracer")
	}
	if !tr.Enabled(LevelLatency) {
		t.Error("Enabled(Latency) = false")
	}
}

// TestTextFormatGolden pins the human-readable trace line format, which
// downstream log scrapers depend on.
func TestTextFormatGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewText(&buf, LevelAll)
	tr.Emit(Event{
		Cycle: 42, Kind: LevelCMC, Dev: 1, Quad: 2, Vault: 17, Bank: 3,
		Cmd: "hmc_lock", Tag: 9, Addr: 0x40, Value: 7, Detail: "note",
	})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "HMCSIM_TRACE : 42 : CMC : dev=1 quad=2 vault=17 bank=3 cmd=hmc_lock tag=9 addr=0x40 value=7 : note\n"
	if got := buf.String(); got != want {
		t.Errorf("text format changed:\n got %q\nwant %q", got, want)
	}
}
