package hmccmd

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCMCSlotCount(t *testing.T) {
	// Paper §IV-A: the Gen2 command space leaves exactly 70 unused codes.
	slots := CMCSlots()
	if len(slots) != NumCMCSlots {
		t.Fatalf("CMCSlots() returned %d slots, want %d", len(slots), NumCMCSlots)
	}
	if got := NumRqst - len(Architected()); got != NumCMCSlots {
		t.Fatalf("enum space has %d CMC entries, want %d", got, NumCMCSlots)
	}
}

func TestCMCSlotsAscendingAndUnused(t *testing.T) {
	prev := -1
	for _, r := range CMCSlots() {
		info := r.Info()
		if int(info.Code) <= prev {
			t.Errorf("%s: code %d not ascending after %d", info.Name, info.Code, prev)
		}
		prev = int(info.Code)
		if info.Class != ClassCMC {
			t.Errorf("%s: class = %v, want ClassCMC", info.Name, info.Class)
		}
		if want := fmt.Sprintf("CMC%d", info.Code); info.Name != want {
			t.Errorf("slot name %q does not encode its decimal code, want %q", info.Name, want)
		}
	}
}

func TestPaperMutexSlotsAreCMC(t *testing.T) {
	// Paper Table V uses command codes 125, 126 and 127 for the mutex ops.
	for _, tc := range []struct {
		r    Rqst
		code uint8
	}{{CMC125, 125}, {CMC126, 126}, {CMC127, 127}} {
		if !tc.r.IsCMC() {
			t.Errorf("%v: IsCMC() = false", tc.r)
		}
		if tc.r.Code() != tc.code {
			t.Errorf("%v: code = %d, want %d", tc.r, tc.r.Code(), tc.code)
		}
	}
}

func TestCodeRoundTrip(t *testing.T) {
	for code := 0; code < NumCodes; code++ {
		r, ok := FromCode(uint8(code))
		if !ok {
			t.Fatalf("FromCode(%d) not ok", code)
		}
		if got := r.Code(); got != uint8(code) {
			t.Errorf("FromCode(%d).Code() = %d", code, got)
		}
	}
	if _, ok := FromCode(128); ok {
		t.Error("FromCode(128) succeeded; want failure for out-of-range code")
	}
}

func TestCodeRoundTripQuick(t *testing.T) {
	f := func(code uint8) bool {
		code &= 0x7F
		r, ok := FromCode(code)
		return ok && r.Code() == code && r.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTableI verifies every command row of Table I of the paper.
func TestTableI(t *testing.T) {
	rows := []struct {
		r         Rqst
		rqstFlits uint8
		rspFlits  uint8
	}{
		{RD256, 1, 17},
		{WR256, 17, 1},
		{PWR256, 17, 0},
		{TWOADD8, 2, 1},
		{ADD16, 2, 1},
		{P2ADD8, 2, 0},
		{PADD16, 2, 0},
		{TWOADDS8R, 2, 2},
		{ADDS16R, 2, 2},
		{INC8, 1, 1},
		{PINC8, 1, 0},
		{XOR16, 2, 2},
		{OR16, 2, 2},
		{NOR16, 2, 2},
		{AND16, 2, 2},
		{NAND16, 2, 2},
		{CASGT8, 2, 2},
		{CASGT16, 2, 2},
		{CASLT8, 2, 2},
		{CASLT16, 2, 2},
		{CASEQ8, 2, 2},
		{CASZERO16, 2, 2},
		{EQ8, 2, 1},
		{EQ16, 2, 1},
		{BWR, 2, 1},
		{PBWR, 2, 0},
		{BWR8R, 2, 2},
		{SWAP16, 2, 2},
	}
	for _, row := range rows {
		info := row.r.Info()
		if info.RqstFlits != row.rqstFlits {
			t.Errorf("%s: request flits = %d, want %d", info.Name, info.RqstFlits, row.rqstFlits)
		}
		if info.RspFlits != row.rspFlits {
			t.Errorf("%s: response flits = %d, want %d", info.Name, info.RspFlits, row.rspFlits)
		}
	}
}

func TestWriteFlitArithmetic(t *testing.T) {
	// A write of n data bytes occupies 1 header/tail FLIT + n/16 data FLITs.
	for _, r := range Architected() {
		info := r.Info()
		switch info.Class {
		case ClassWrite, ClassPostedWrite:
			want := 1 + info.DataBytes/FlitBytes
			if uint16(info.RqstFlits) != want {
				t.Errorf("%s: rqst flits %d, want %d", info.Name, info.RqstFlits, want)
			}
		case ClassRead:
			want := 1 + info.DataBytes/FlitBytes
			if uint16(info.RspFlits) != want {
				t.Errorf("%s: rsp flits %d, want %d", info.Name, info.RspFlits, want)
			}
			if info.RqstFlits != 1 {
				t.Errorf("%s: rqst flits %d, want 1", info.Name, info.RqstFlits)
			}
		}
	}
}

func TestPostedCommandsHaveNoResponse(t *testing.T) {
	for r := Rqst(0); int(r) < NumRqst; r++ {
		info := r.Info()
		if info.Rsp == RspNone && info.RspFlits != 0 {
			t.Errorf("%s: posted/flow command with %d response flits", info.Name, info.RspFlits)
		}
		if info.Rsp != RspNone && info.RspFlits == 0 {
			t.Errorf("%s: response command %v but zero response flits", info.Name, info.Rsp)
		}
		if r.Posted() != (info.Rsp == RspNone && info.Class != ClassFlow) {
			t.Errorf("%s: Posted() inconsistent with table", info.Name)
		}
	}
}

func TestMaxPacketBounds(t *testing.T) {
	for r := Rqst(0); int(r) < NumRqst; r++ {
		info := r.Info()
		if info.RqstFlits < 1 || info.RqstFlits > MaxPacketFlits {
			t.Errorf("%s: request flits %d out of [1,%d]", info.Name, info.RqstFlits, MaxPacketFlits)
		}
		if info.RspFlits > MaxPacketFlits {
			t.Errorf("%s: response flits %d exceeds %d", info.Name, info.RspFlits, MaxPacketFlits)
		}
	}
}

func TestRespCodeRoundTrip(t *testing.T) {
	for _, resp := range []Resp{RspNone, RdRS, WrRS, MdRdRS, MdWrRS, RspError} {
		code, ok := resp.Code()
		if !ok {
			t.Fatalf("%v: Code() not ok", resp)
		}
		if got := RespFromCode(code); got != resp {
			t.Errorf("RespFromCode(%#x) = %v, want %v", code, got, resp)
		}
	}
	if _, ok := RspCMC.Code(); ok {
		t.Error("RspCMC.Code() returned an architected code")
	}
	if got := RespFromCode(0x7F); got != RspCMC {
		t.Errorf("RespFromCode(0x7F) = %v, want RspCMC", got)
	}
}

func TestCMCForCode(t *testing.T) {
	if _, ok := CMCForCode(0x08); ok {
		t.Error("CMCForCode accepted architected WR16 code")
	}
	r, ok := CMCForCode(125)
	if !ok || r != CMC125 {
		t.Errorf("CMCForCode(125) = %v, %v; want CMC125, true", r, ok)
	}
	if _, ok := CMCForCode(200); ok {
		t.Error("CMCForCode accepted out-of-range code")
	}
}

func TestStringers(t *testing.T) {
	if WR64.String() != "WR64" {
		t.Errorf("WR64.String() = %q", WR64.String())
	}
	if CMC125.String() != "CMC125" {
		t.Errorf("CMC125.String() = %q", CMC125.String())
	}
	if RdRS.String() != "RD_RS" {
		t.Errorf("RdRS.String() = %q", RdRS.String())
	}
	if ClassAtomic.String() != "ATOMIC" {
		t.Errorf("ClassAtomic.String() = %q", ClassAtomic.String())
	}
	if got := Rqst(250).String(); got != "Rqst(250)" {
		t.Errorf("invalid enum String() = %q", got)
	}
}

func TestInfoPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Info() on invalid enum did not panic")
		}
	}()
	Rqst(255).Info()
}
