// Package topo implements multi-device HMC topologies — the 1.0
// simulator's ability to "chain multiple HMC devices together in a
// multitude of different topologies" (paper §II), carried forward.
//
// The host attaches to device 0; requests whose CUB field addresses
// another cube are routed across the topology. Routing uses the HMC
// packet-forwarding model at transaction granularity: each inter-cube hop
// adds one cycle of latency in each direction, and the packet then enters
// the target device's normal link queue structure. (The original
// simulator forwards packets through cube link queues; the hop-delay
// model preserves the latency and ordering behaviour without duplicating
// the device pipeline per hop.)
package topo

import (
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/packet"
	"repro/internal/span"
	"repro/internal/trace"
)

// Kind selects the inter-cube wiring.
type Kind int

// Supported topologies.
const (
	// KindSingle is one device, no routing.
	KindSingle Kind = iota
	// KindChain wires devices in a linear chain: hops(i,j) = |i-j|.
	KindChain
	// KindStar wires every device one hop from device 0.
	KindStar
	// KindRing wires devices in a ring: hops(i,j) = min ring distance.
	KindRing
)

var kindNames = map[Kind]string{
	KindSingle: "single", KindChain: "chain", KindStar: "star", KindRing: "ring",
}

// String returns the topology name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a topology name.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("topo: unknown topology %q", s)
}

// Errors returned by the topology layer.
var (
	// ErrBadCUB reports a request addressing a cube outside the topology.
	ErrBadCUB = errors.New("topo: CUB addresses no device")
	// ErrBadCount reports an unsupported device count.
	ErrBadCount = errors.New("topo: device count out of range")
)

type delayedRqst struct {
	deliverAt uint64
	link      int
	rqst      *packet.Rqst
}

type delayedRsp struct {
	deliverAt uint64
	rsp       *packet.Rsp
}

// Topology is a set of devices with host attachment at device 0.
type Topology struct {
	kind  Kind
	devs  []*device.Device
	cycle uint64

	pendingRqst []delayedRqst
	// pendingRsp holds forwarded responses in transit, one FIFO per host
	// link. Each queue is consumed through its rspHead index rather than
	// by re-slicing, so the backing array (and the consumed entries'
	// capacity) is reused once the queue drains instead of leaking behind
	// the slice head on long chained runs.
	pendingRsp [][]delayedRsp
	rspHead    []int
	// ForwardedRqsts and ForwardedRsps count packets that crossed at
	// least one inter-cube hop.
	ForwardedRqsts, ForwardedRsps uint64

	// pool steps the devices concurrently each cycle when SetWorkers
	// enabled it; stepFn is the bound worker method (allocated once).
	pool   *device.Pool
	stepFn func(int)

	// cal is the event scheduler's per-cycle step plan (calendar.go);
	// eventOff disables event-driven scheduling entirely, restoring
	// unconditional per-cycle stepping of every cube (SetEventDriven).
	cal      calendar
	eventOff bool

	// rqstFree recycles the forwarded-request clones Send buffers in the
	// hop-delay queue, so steady-state cross-cube traffic allocates
	// nothing once each clone's payload buffer reaches its high-water
	// capacity.
	rqstFree []*packet.Rqst

	// spans, when non-nil, is the request-lifecycle flight recorder
	// shared with every device (SetSpans): the topology contributes the
	// inter-cube hop events (forward departure, return arrival).
	spans *span.Tracer
}

// New builds n identically configured devices wired as kind. A nil tracer
// disables tracing.
func New(kind Kind, n int, cfg config.Config, tracer trace.Tracer) (*Topology, error) {
	if n < 1 || n > config.MaxDevs {
		return nil, fmt.Errorf("%w: %d", ErrBadCount, n)
	}
	if kind == KindSingle && n != 1 {
		return nil, fmt.Errorf("%w: single topology with %d devices", ErrBadCount, n)
	}
	t := &Topology{kind: kind}
	for i := 0; i < n; i++ {
		d, err := device.New(i, cfg, tracer)
		if err != nil {
			return nil, err
		}
		t.devs = append(t.devs, d)
	}
	t.pendingRsp = make([][]delayedRsp, cfg.Links)
	t.rspHead = make([]int, cfg.Links)
	t.cal.init(n)
	return t, nil
}

// SetEventDriven toggles event-driven cycle scheduling (on by default):
// each Clock consults the calendar to fast-forward provably-idle cubes,
// and the batched drivers (ClockN, ClockUntilRecv) jump whole idle
// spans. Both modes are bit-identical — the calendar only skips work
// device.NextEventCycle proves to be a no-op — so turning it off exists
// as the topology-level analogue of device.ForceWalk: an escape hatch
// for debugging and for the equivalence suite's reference runs.
func (t *Topology) SetEventDriven(on bool) { t.eventOff = !on }

// SetSpans attaches one request-lifecycle span tracer to the topology
// and every device in it; nil detaches. Purely observational — results
// are bit-identical with or without it.
func (t *Topology) SetSpans(tr *span.Tracer) {
	t.spans = tr
	for _, d := range t.devs {
		d.SetSpans(tr)
	}
}

// Spans returns the attached span tracer, nil when tracing is off.
func (t *Topology) Spans() *span.Tracer { return t.spans }

// SetWorkers enables concurrent device stepping: each Clock steps the
// topology's devices across up to n persistent pool workers (capped at
// the device count; n <= 1 restores serial stepping). Stepping devices
// concurrently is legal because inter-cube packet exchange happens only
// at cycle boundaries — Send/Recv and the hop-delay transfers all run
// single-threaded in link order before and after the step — so results
// are bit-identical to serial stepping; only the interleaving of
// trace-event emission within one cycle is unordered (exactly the
// parallel-execute-phase caveat, and the tracers serialize Emit).
//
// The caller owns the pool lifetime: Close releases it.
func (t *Topology) SetWorkers(n int) {
	t.pool.Close()
	t.pool, t.stepFn = nil, nil
	if n > len(t.devs) {
		n = len(t.devs)
	}
	if n > 1 {
		t.pool = device.NewPool(n)
		t.stepFn = t.stepWorker
	}
}

// stepWorker is the pool task: worker w clocks its fixed contiguous
// chunk of the device list, honouring the calendar's step plan in
// event-driven mode (the plan is filled single-threaded before the pool
// runs and is read-only during the epoch).
func (t *Topology) stepWorker(w int) {
	n := t.pool.Size()
	chunk := (len(t.devs) + n - 1) / n
	lo := min(w*chunk, len(t.devs))
	hi := min(lo+chunk, len(t.devs))
	for i, d := range t.devs[lo:hi] {
		if t.eventOff || t.cal.step[lo+i] {
			d.Clock()
		} else {
			d.SkipCycles(1)
		}
	}
}

// Close releases the topology's stepping pool and every device's
// execute-phase pool. The topology remains usable serially afterwards.
func (t *Topology) Close() {
	t.pool.Close()
	t.pool, t.stepFn = nil, nil
	for _, d := range t.devs {
		d.Close()
	}
}

// Devices returns the topology's devices; device 0 is host-attached.
func (t *Topology) Devices() []*device.Device { return t.devs }

// Device returns one device by CUB.
func (t *Topology) Device(cub int) (*device.Device, error) {
	if cub < 0 || cub >= len(t.devs) {
		return nil, fmt.Errorf("%w: %d", ErrBadCUB, cub)
	}
	return t.devs[cub], nil
}

// Hops returns the inter-cube hop count between two devices.
func (t *Topology) Hops(a, b int) int {
	if a == b {
		return 0
	}
	switch t.kind {
	case KindChain:
		if a > b {
			a, b = b, a
		}
		return b - a
	case KindStar:
		if a == 0 || b == 0 {
			return 1
		}
		return 2
	case KindRing:
		n := len(t.devs)
		d := (b - a + n) % n
		if n-d < d {
			d = n - d
		}
		return d
	default:
		return 0
	}
}

// Send submits a request on a host link of device 0. Requests addressing
// remote cubes are forwarded with one cycle of delay per hop.
func (t *Topology) Send(link int, r *packet.Rqst) error {
	target := int(r.CUB)
	if target >= len(t.devs) {
		return fmt.Errorf("%w: CUB %d with %d devices", ErrBadCUB, target, len(t.devs))
	}
	if target == 0 {
		return t.devs[0].Send(link, r)
	}
	hops := t.Hops(0, target)
	// Adopt by copy: the packet sits in the hop-delay buffer for several
	// cycles, and callers are free to reuse their request (and its
	// payload) as soon as Send returns — the same adoption contract
	// device.Send has. The copy target comes from the topology's free
	// list (recycled when the forwarded request is delivered), so
	// steady-state forwarding allocates nothing.
	c := t.getRqst()
	c.CopyFrom(r)
	t.pendingRqst = append(t.pendingRqst, delayedRqst{
		deliverAt: t.cycle + uint64(hops),
		link:      link,
		rqst:      c,
	})
	t.ForwardedRqsts++
	if t.spans != nil {
		// Forward makes the tracking decision and opens the span for
		// remote requests; the remote device's Send then records the
		// hop-stage end, and Arrive (below) closes after the return hops.
		t.spans.Forward(link, r.TAG, uint8(r.Cmd.InfoRef().Class), hops, t.cycle)
	}
	return nil
}

// getRqst pops a recycled forwarded-request clone, or allocates the
// free list's first-use entries.
func (t *Topology) getRqst() *packet.Rqst {
	if n := len(t.rqstFree); n > 0 {
		r := t.rqstFree[n-1]
		t.rqstFree = t.rqstFree[:n-1]
		return r
	}
	return new(packet.Rqst)
}

// putRqst returns a delivered clone to the free list, keeping its
// payload buffer for reuse by the next CopyFrom.
func (t *Topology) putRqst(r *packet.Rqst) {
	t.rqstFree = append(t.rqstFree, r)
}

// Recv pops the next response available on a host link: local responses
// from device 0 first, then forwarded responses whose hop delay has
// elapsed.
func (t *Topology) Recv(link int) (*packet.Rsp, bool) {
	if rsp, ok := t.devs[0].Recv(link); ok {
		return rsp, true
	}
	if link < 0 || link >= len(t.pendingRsp) {
		return nil, false
	}
	q := t.pendingRsp[link]
	h := t.rspHead[link]
	if h < len(q) && q[h].deliverAt <= t.cycle {
		rsp := q[h].rsp
		if t.spans != nil && t.spans.Tracked(rsp.TAG) {
			t.spans.Arrive(link, rsp.TAG, t.cycle)
		}
		q[h].rsp = nil // release the head entry's packet reference
		h++
		if h == len(q) {
			// Drained: rewind onto the same backing array so steady-state
			// forwarding stops allocating once the queue reaches its
			// high-water capacity.
			t.pendingRsp[link] = q[:0]
			h = 0
		}
		t.rspHead[link] = h
		return rsp, true
	}
	return nil, false
}

// deliverPending delivers forwarded requests whose hop delay has
// elapsed — before the cycle advances, so each hop costs one full
// device cycle. A stalled target link keeps the packet in transit
// (retried next cycle); delivered clones return to the free list
// (device.Send adopts by deep copy).
func (t *Topology) deliverPending() {
	if len(t.pendingRqst) == 0 {
		return
	}
	remaining := t.pendingRqst[:0]
	for _, p := range t.pendingRqst {
		if p.deliverAt <= t.cycle {
			if err := t.devs[p.rqst.CUB].Send(p.link, p.rqst); err == nil {
				t.putRqst(p.rqst)
				continue
			}
		}
		remaining = append(remaining, p)
	}
	t.pendingRqst = remaining
}

// collectFrom collects responses surfacing on one remote device and
// starts them on their return trip.
func (t *Topology) collectFrom(cub int) {
	hops := uint64(t.Hops(0, cub))
	for link := range t.pendingRsp {
		for {
			rsp, ok := t.devs[cub].Recv(link)
			if !ok {
				break
			}
			t.pendingRsp[link] = append(t.pendingRsp[link], delayedRsp{
				deliverAt: t.cycle + hops,
				rsp:       rsp,
			})
			t.ForwardedRsps++
		}
	}
}

// Clock advances every device one cycle and moves forwarded packets
// across the inter-cube hops. In event-driven mode (the default) the
// calendar decides per cube whether to run the full device Clock or a
// SkipCycles(1) counter bump, the worker pool is bypassed when fewer
// than two cubes are active (the handoff would outweigh the work), and
// only stepped cubes are scanned for surfaced responses — a skipped
// cube's host queues are provably frozen.
func (t *Topology) Clock() {
	if len(t.devs) == 1 {
		// A single cube never forwards (Send routes CUB 0 directly), so
		// the exchange scans are vacuous.
		t.cycle++
		t.devs[0].Clock()
		return
	}
	t.deliverPending()
	t.cycle++

	// Step the devices. During a device cycle no inter-cube state is
	// touched (the exchange above and the collection below bracket it),
	// so the devices step concurrently when a pool is installed.
	if t.eventOff {
		if t.pool != nil {
			t.pool.Run(t.stepFn)
		} else {
			for _, d := range t.devs {
				d.Clock()
			}
		}
		for cub := 1; cub < len(t.devs); cub++ {
			t.collectFrom(cub)
		}
		return
	}
	active := t.planCycle()
	if t.pool != nil && active > 1 {
		t.pool.Run(t.stepFn)
	} else {
		for i, d := range t.devs {
			if t.cal.step[i] {
				d.Clock()
			} else {
				d.SkipCycles(1)
			}
		}
	}
	for cub := 1; cub < len(t.devs); cub++ {
		if t.cal.step[cub] {
			t.collectFrom(cub)
		}
	}
}

// ClockN advances the topology n cycles — the batched form of Clock,
// and the event scheduler's biggest lever: whole provably-idle spans
// (every cube quiescent or parked behind fault windows, no forwarded
// packet deliverable) collapse into one SkipCycles jump per cube, and
// spans where exactly one cube is active batch that cube's device clock
// back-to-back without per-cycle topology scans or pool handoffs.
// Results are bit-identical to n sequential Clock calls in every
// configuration; SetEventDriven(false) restores literal per-cycle
// stepping.
func (t *Topology) ClockN(n uint64) {
	if len(t.devs) == 1 && len(t.pendingRqst) == 0 {
		d := t.devs[0]
		if t.eventOff {
			t.cycle += n
			for i := uint64(0); i < n; i++ {
				d.Clock()
			}
			return
		}
		for n > 0 {
			b := d.NextEventCycle()
			var span uint64
			if b == device.NeverCycle {
				span = n
			} else if m := b - 1 - t.cycle; m > 0 {
				span = min(m, n)
			}
			if span > 0 {
				d.SkipCycles(span)
				t.cycle += span
				n -= span
				continue
			}
			t.cycle++
			d.Clock()
			n--
		}
		return
	}
	if t.eventOff {
		for i := uint64(0); i < n; i++ {
			t.Clock()
		}
		return
	}
	for n > 0 {
		if span := t.jumpSpan(n); span > 0 {
			t.skipAll(span)
			n -= span
			continue
		}
		if done := t.clockSingleActive(n); done > 0 {
			n -= done
			continue
		}
		t.Clock()
		n--
	}
}

// RspAvailable reports whether a host-side Recv would succeed on some
// link right now: device 0 holds a response, or a forwarded response's
// hop delay has elapsed at the head of a link's return queue.
func (t *Topology) RspAvailable() bool {
	if t.devs[0].HostRspQueued() {
		return true
	}
	for link, q := range t.pendingRsp {
		h := t.rspHead[link]
		if h < len(q) && q[h].deliverAt <= t.cycle {
			return true
		}
	}
	return false
}

// ClockUntilRecv advances the topology until a response is available to
// Recv or budget cycles have elapsed, returning the cycles advanced
// (always at least one when budget permits — mirroring a per-cycle
// driver that clocks before polling). It is the run-until-event form of
// ClockN: idle and parked spans are jumped, but never past the cycle a
// response surfaces or matures, so the caller observes responses on
// exactly the cycle a clock-and-poll-every-cycle loop would.
func (t *Topology) ClockUntilRecv(budget uint64) uint64 {
	if budget == 0 {
		return 0
	}
	if t.RspAvailable() {
		// Degenerate call (a response is already waiting): advance the
		// one cycle a clock-and-poll driver would.
		t.Clock()
		return 1
	}
	var adv uint64
	for adv < budget {
		if !t.eventOff {
			if span := t.recvSpan(budget - adv); span > 0 {
				t.skipAll(span)
				adv += span
				// A jump only lands on (never crosses) a maturity cycle;
				// device-0 queues are frozen across it, so only the
				// pendingRsp heads can have become available.
				if t.RspAvailable() {
					break
				}
				continue
			}
		}
		t.Clock()
		adv++
		if t.RspAvailable() {
			break
		}
	}
	return adv
}

// Cycle returns the topology clock.
func (t *Topology) Cycle() uint64 { return t.cycle }

// Reset rewinds the topology and every device to the as-constructed
// state without reallocating: in-transit forwarded packets recycle into
// their free lists, the hop-delay queues rewind onto their backing
// arrays, the forwarding counters and the topology clock zero, and each
// device resets in place (device.Reset). The stepping pool, the
// calendar (refilled from scratch every cycle) and the clone free list
// are reusable capacity and survive. After Reset the topology is
// bit-identical, in every statistic and packet, to a freshly built one.
func (t *Topology) Reset() {
	for _, p := range t.pendingRqst {
		t.putRqst(p.rqst)
	}
	t.pendingRqst = t.pendingRqst[:0]
	for link := range t.pendingRsp {
		q := t.pendingRsp[link]
		for i := t.rspHead[link]; i < len(q); i++ {
			packet.PutRsp(q[i].rsp)
			q[i].rsp = nil
		}
		t.pendingRsp[link] = q[:0]
		t.rspHead[link] = 0
	}
	t.ForwardedRqsts, t.ForwardedRsps = 0, 0
	t.cycle = 0
	for _, d := range t.devs {
		d.Reset()
	}
}
