// Package addr implements the HMC physical address decomposition.
//
// The device interleaves the physical address space across vaults at the
// maximum-block-size granularity, so consecutive blocks land in
// consecutive vaults and sequential streams spread across the whole
// device. Above the vault field the address selects the bank within the
// vault, and the remainder selects the DRAM die and row:
//
//	+-----------------------------+--------+---------+----------+
//	|        row / dram           |  bank  |  vault  |  offset  |
//	+-----------------------------+--------+---------+----------+
//	                               bankBits  vaultBits offsetBits
//
// The quadrant is derived from the vault: each link owns one quadrant of
// Vaults/Links consecutive vaults.
package addr

import (
	"errors"
	"fmt"

	"repro/internal/config"
)

// ErrOutOfRange reports an address beyond the device capacity.
var ErrOutOfRange = errors.New("addr: address out of device range")

// Location is a fully decoded device coordinate.
type Location struct {
	// Quad is the logic-layer quadrant (0..Links-1).
	Quad int
	// Vault is the device-global vault index (0..Vaults-1).
	Vault int
	// VaultInQuad is the vault index within its quadrant.
	VaultInQuad int
	// Bank is the bank within the vault.
	Bank int
	// DRAM is the stacked DRAM die the row maps onto.
	DRAM int
	// Row is the row within the bank address space.
	Row uint64
	// Offset is the byte offset within the interleave block.
	Offset uint64
}

// Map decodes addresses for one device configuration.
type Map struct {
	cfg        config.Config
	offsetBits int
	vaultBits  int
	bankBits   int
	capacity   uint64
}

// NewMap builds the address map for a validated configuration.
func NewMap(cfg config.Config) (*Map, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Map{
		cfg:        cfg,
		offsetBits: cfg.OffsetBits(),
		vaultBits:  cfg.VaultBits(),
		bankBits:   cfg.BankBits(),
		capacity:   cfg.CapacityBytes(),
	}, nil
}

// Capacity returns the mapped capacity in bytes.
func (m *Map) Capacity() uint64 { return m.capacity }

// Decode splits a physical address into its device coordinate.
func (m *Map) Decode(a uint64) (Location, error) {
	if a >= m.capacity {
		return Location{}, fmt.Errorf("%w: %#x >= %#x", ErrOutOfRange, a, m.capacity)
	}
	offset := a & (1<<m.offsetBits - 1)
	rest := a >> m.offsetBits
	vault := int(rest & (1<<m.vaultBits - 1))
	rest >>= m.vaultBits
	bank := int(rest & (1<<m.bankBits - 1))
	row := rest >> m.bankBits
	vpq := m.cfg.VaultsPerQuad()
	return Location{
		Quad:        vault / vpq,
		Vault:       vault,
		VaultInQuad: vault % vpq,
		Bank:        bank,
		DRAM:        int(row % uint64(m.cfg.DRAMsPerBank)),
		Row:         row,
		Offset:      offset,
	}, nil
}

// Encode reassembles a physical address from a coordinate. It is the
// inverse of Decode.
func (m *Map) Encode(loc Location) (uint64, error) {
	if loc.Vault < 0 || loc.Vault >= m.cfg.Vaults ||
		loc.Bank < 0 || loc.Bank >= m.cfg.BanksPerVault ||
		loc.Offset >= 1<<m.offsetBits {
		return 0, fmt.Errorf("%w: coordinate %+v", ErrOutOfRange, loc)
	}
	a := loc.Row
	a = a<<m.bankBits | uint64(loc.Bank)
	a = a<<m.vaultBits | uint64(loc.Vault)
	a = a<<m.offsetBits | loc.Offset
	if a >= m.capacity {
		return 0, fmt.Errorf("%w: coordinate %+v maps to %#x", ErrOutOfRange, loc, a)
	}
	return a, nil
}

// BlockBase returns the base address of the interleave block containing a.
func (m *Map) BlockBase(a uint64) uint64 {
	return a &^ (1<<m.offsetBits - 1)
}

// QuadOf returns the quadrant servicing address a; it is a cheaper path
// than a full Decode for the crossbar routing hot path.
func (m *Map) QuadOf(a uint64) int {
	vault := int(a >> m.offsetBits & (1<<m.vaultBits - 1))
	return vault / m.cfg.VaultsPerQuad()
}

// VaultOf returns the device-global vault index servicing address a.
func (m *Map) VaultOf(a uint64) int {
	return int(a >> m.offsetBits & (1<<m.vaultBits - 1))
}
