package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
)

// conn is one client connection. The reader goroutine decodes request
// lines and routes them to shards; the writer goroutine owns the socket
// write side, batching queued responses and flushing when the queue
// drains. Responses travel reader→shard→out-channel→writer, so a shard
// never blocks on a slow socket: if out fills up (ConnWriteDepth
// pipelined responses unread), the connection is dropped instead.
type conn struct {
	srv *Server
	nc  net.Conn
	out chan []byte

	// pending counts requests routed to shards whose responses have
	// not yet been handed to the writer; the conn dies only after the
	// last one lands (a half-closed client still gets its answers).
	pending    atomic.Int64
	readerDone atomic.Bool
	dead       atomic.Bool
	dropOnce   sync.Once
	done       chan struct{}
}

// drop marks the connection dead and wakes both loops: the deadline
// unblocks any in-flight Read/Write, and done tells the writer to
// flush what it has and close the socket. Idempotent.
func (c *conn) drop() {
	c.dropOnce.Do(func() {
		c.dead.Store(true)
		c.nc.SetDeadline(time.Unix(0, 0))
		close(c.done)
	})
}

// send hands an encoded response to the writer. It never blocks: a
// full queue means the client stopped reading, and the connection is
// dropped rather than allowed to wedge the shard that produced buf.
func (c *conn) send(buf []byte) {
	if c.dead.Load() {
		putBuf(buf)
		return
	}
	select {
	case c.out <- buf:
	default:
		c.srv.met.connsDropped.Inc()
		c.drop()
		putBuf(buf)
	}
}

// Sentinel read errors the loop can recover from (binary frames) or
// must die on (JSON lines, which cannot be re-synchronized).
var (
	errLineTooLong  = errors.New("request line exceeds MaxLineBytes")
	errFrameTooBig  = errors.New("binary frame exceeds MaxLineBytes")
	errFrameSkipped = errors.New("oversized binary frame skipped")
)

func (c *conn) readLoop() {
	defer func() {
		c.readerDone.Store(true)
		if c.pending.Load() == 0 {
			c.drop()
		}
		c.srv.connWG.Done()
	}()
	br := bufio.NewReaderSize(c.nc, 4096)
	nshards := uint64(len(c.srv.shards))
	binmode := false
	var scratch []byte
	for {
		var body []byte
		var err error
		if binmode {
			body, err = readFrame(br, &scratch, c.srv.cfg.MaxLineBytes)
			if errors.Is(err, errFrameSkipped) {
				// Length-prefixed framing stays in sync across a skipped
				// body; report and keep serving the connection.
				c.srv.met.protoErrs.Inc()
				c.sendBinError(0, 0, errFrameTooBig.Error())
				continue
			}
		} else {
			body, err = readLine(br, &scratch, c.srv.cfg.MaxLineBytes)
		}
		if err != nil {
			// EOF, a dead connection, or an unrecoverable stream error
			// (an oversized JSON line cannot be re-synchronized).
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !c.dead.Load() {
				c.srv.met.protoErrs.Inc()
				c.sendError(0, err.Error(), binmode)
			}
			return
		}
		if !binmode && len(bytes.TrimSpace(body)) == 0 {
			continue
		}
		req := getRequest()
		var op Op
		if binmode {
			op, err = DecodeRequestBinary(body, req)
		} else {
			op, err = DecodeRequest(body, req)
		}
		if err != nil {
			c.srv.met.protoErrs.Inc()
			c.sendError(req.ID, err.Error(), binmode)
			putRequest(req)
			continue
		}
		if op == OpHello {
			// hello never reaches a shard: the reader answers it in the
			// current encoding and switches modes for everything after.
			rsp := Response{ID: req.ID, OK: true, Proto: ProtoJSON}
			if req.Proto == ProtoBinary {
				rsp.Proto = ProtoBinary
			}
			c.send(AppendResponse(getBuf(), OpHello, &rsp))
			binmode = rsp.Proto == ProtoBinary
			c.srv.met.ops[OpHello].Inc()
			putRequest(req)
			continue
		}
		if op == OpInit {
			// The session id is minted here so the reader alone decides
			// the owning shard; the shard fills in the rest.
			req.Sess = c.srv.nextSess.Add(1)
		}
		c.pending.Add(1)
		// Blocking send: shard backlog is the protocol's backpressure.
		// Shards drain their channels until Server.Close closes them,
		// which happens only after every reader has exited.
		c.srv.shards[req.Sess%nshards].ch <- task{op: op, req: req, c: c, bin: binmode}
	}
}

// readLine returns the next newline-terminated line with the newline
// (and a trailing \r) stripped. scratch carries fragments of lines that
// span buffer fills; short lines are returned straight from the
// bufio.Reader's buffer without copying.
func readLine(br *bufio.Reader, scratch *[]byte, max int) ([]byte, error) {
	*scratch = (*scratch)[:0]
	for {
		frag, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			*scratch = append(*scratch, frag...)
			if len(*scratch) > max {
				return nil, errLineTooLong
			}
			continue
		}
		if err != nil {
			if err == io.EOF && (len(frag) > 0 || len(*scratch) > 0) {
				// A final unterminated line still counts as a line.
				line := frag
				if len(*scratch) > 0 {
					*scratch = append(*scratch, frag...)
					line = *scratch
				}
				if len(line) > max {
					return nil, errLineTooLong
				}
				return line, nil
			}
			return nil, err
		}
		line := frag
		if len(*scratch) > 0 {
			*scratch = append(*scratch, frag...)
			line = *scratch
		}
		if len(line) > max {
			return nil, errLineTooLong
		}
		line = line[:len(line)-1]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		return line, nil
	}
}

// readFrame returns the next binary frame body, read into scratch (the
// returned slice aliases it). An oversized frame is skipped in full and
// reported as errFrameSkipped so the caller can keep the connection.
func readFrame(br *bufio.Reader, scratch *[]byte, max int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > max {
		if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
			return nil, err
		}
		return nil, errFrameSkipped
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	*scratch = (*scratch)[:n]
	if _, err := io.ReadFull(br, *scratch); err != nil {
		return nil, err
	}
	return *scratch, nil
}

// sendError emits a bad_request response from the reader itself —
// malformed input never reaches a shard.
func (c *conn) sendError(id uint64, msg string, bin bool) {
	code := CodeBadRequest
	if i := strings.IndexByte(msg, ':'); i > 0 {
		switch msg[:i] {
		case CodeUnknownOp:
			code = CodeUnknownOp
		case CodeBadVersion:
			code = CodeBadVersion
		case CodeLimit:
			code = CodeLimit
		}
	}
	if bin {
		c.sendBinError(id, codeToByte(code), msg)
		return
	}
	rsp := Response{ID: id, Err: msg, Code: code}
	c.send(AppendResponse(getBuf(), 0, &rsp))
}

func (c *conn) sendBinError(id uint64, codeByte uint8, msg string) {
	code := CodeBadRequest
	if codeByte != 0 {
		code = byteToCode(codeByte)
	}
	rsp := Response{ID: id, Err: msg, Code: code}
	c.send(AppendResponseBinary(getBuf(), 0, &rsp))
}

func (c *conn) writeLoop() {
	defer c.srv.connWG.Done()
	defer c.srv.forget(c)
	bw := bufio.NewWriterSize(c.nc, 16<<10)
	broken := false
	for {
		select {
		case buf := <-c.out:
			c.writeOne(bw, buf, &broken)
			if len(c.out) == 0 && !broken {
				if err := bw.Flush(); err != nil {
					broken = true
					c.drop()
				}
			}
		case <-c.done:
			for {
				select {
				case buf := <-c.out:
					c.writeOne(bw, buf, &broken)
				default:
					if !broken {
						bw.Flush()
					}
					c.nc.Close()
					return
				}
			}
		}
	}
}

func (c *conn) writeOne(bw *bufio.Writer, buf []byte, broken *bool) {
	if !*broken {
		if _, err := bw.Write(buf); err != nil {
			*broken = true
			c.drop()
		}
	}
	putBuf(buf)
}

// Request and response-buffer pools: the hot path (decode → exec →
// encode → write) recycles both, so a warmed-up server allocates
// nothing per operation beyond what the simulator itself does.
var reqPool = sync.Pool{
	New: func() any {
		return &Request{Payload: make([]uint64, 0, packet.MaxPayloadWords)}
	},
}

func getRequest() *Request  { return reqPool.Get().(*Request) }
func putRequest(r *Request) { reqPool.Put(r) }

// bufPool holds response buffers as *[]byte; hdrPool recycles the
// slice-header boxes themselves, so putBuf re-boxes a buffer without
// the `&b` escape allocating a fresh header every call. Each box lives
// in exactly one of the two pools at a time.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

var hdrPool = sync.Pool{
	New: func() any { return new([]byte) },
}

func getBuf() []byte {
	p := bufPool.Get().(*[]byte)
	b := (*p)[:0]
	*p = nil
	hdrPool.Put(p)
	return b
}

func putBuf(b []byte) {
	if cap(b) > 1<<20 {
		return // oversized one-offs (stats on big fleets) are not retained
	}
	p := hdrPool.Get().(*[]byte)
	*p = b
	bufPool.Put(p)
}
