package workload

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/config"
	"repro/internal/sim"
)

// RunIndexed executes n independent jobs across a bounded pool of
// workers and returns the results in index order. workers <= 0 selects
// one worker per host core. Errors do not cancel in-flight jobs; if
// several jobs fail, the error of the lowest index is returned, so the
// outcome is deterministic regardless of scheduling.
//
// Sweep points are embarrassingly parallel — each builds its own
// simulator, memory and agents — which is what makes regenerating the
// paper's Figures 5-7 (hundreds of full simulations) scale with host
// cores.
func RunIndexed[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// MutexSweepParallel runs the mutex sweep with the given worker count
// (<= 0 means one per host core). Each thread count gets an independent
// simulator, so results — including every cycle count and statistic —
// are identical to the serial sweep; only wall time changes.
func MutexSweepParallel(cfg config.Config, lo, hi int, lockAddr uint64, workers int, opts ...sim.Option) (MutexSweepResult, error) {
	return MutexSweepWithProgress(cfg, lo, hi, lockAddr, workers, nil, opts...)
}

// MutexSweepWithProgress is MutexSweepParallel with a completion hook:
// progress (when non-nil) is called once per finished sweep point, from
// whichever worker goroutine finished it, so it must be safe for
// concurrent use. The hmc-mutex command feeds its live metrics endpoint
// from this hook (aggregate counters only — a sweep builds thousands of
// short-lived simulators, too many to register individually).
func MutexSweepWithProgress(cfg config.Config, lo, hi int, lockAddr uint64, workers int, progress func(MutexRun), opts ...sim.Option) (MutexSweepResult, error) {
	out := MutexSweepResult{Config: cfg}
	if hi < lo {
		return out, nil
	}
	runs, err := RunIndexed(workers, hi-lo+1, func(i int) (MutexRun, error) {
		run, err := RunMutex(cfg, lo+i, lockAddr, opts...)
		if err != nil {
			return run, fmt.Errorf("threads=%d: %w", lo+i, err)
		}
		if progress != nil {
			progress(run)
		}
		return run, nil
	})
	if err != nil {
		return out, err
	}
	out.Runs = runs
	return out, nil
}
