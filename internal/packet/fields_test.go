package packet

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/hmccmd"
)

// TestTailFieldAccessorsRqst: every reliability field written through the
// struct encoder reads back identically through the wire-form accessors
// and through DecodeRqstInto.
func TestTailFieldAccessorsRqst(t *testing.T) {
	prop := func(rrp, frp uint16, seq uint8, pb bool, rtc uint8, adrs uint64, tag uint16) bool {
		r := &Rqst{
			Cmd: hmccmd.RD64, ADRS: adrs & MaxADRS, TAG: tag & MaxTag,
			RRP: rrp & 0x1FF, FRP: frp & 0x1FF, SEQ: seq & 0x7, Pb: pb, RTC: rtc & 0x1F,
		}
		words, err := r.Encode()
		if err != nil {
			return false
		}
		if Seq(words) != r.SEQ || Rrp(words) != r.RRP || Frp(words) != r.FRP || Poison(words) != r.Pb {
			return false
		}
		if VerifyCRC(words) != nil {
			return false
		}
		var back Rqst
		if err := DecodeRqstInto(&back, words); err != nil {
			return false
		}
		return back.SEQ == r.SEQ && back.RRP == r.RRP && back.FRP == r.FRP &&
			back.Pb == r.Pb && back.RTC == r.RTC
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestTailFieldAccessorsRsp: the response-side fields (DINV, ERRSTAT)
// round-trip through EncodeInto/DecodeRspInto and the accessors agree
// with the wire image.
func TestTailFieldAccessorsRsp(t *testing.T) {
	prop := func(rrp, frp uint16, seq uint8, dinv bool, errstat uint8, tag uint16) bool {
		p := &Rsp{
			Cmd: hmccmd.RdRS, TAG: tag & MaxTag, LNG: 2, Payload: []uint64{1, 2},
			RRP: rrp & 0x1FF, FRP: frp & 0x1FF, SEQ: seq & 0x7,
			DINV: dinv, ERRSTAT: errstat & 0x7F,
		}
		words, err := p.Encode()
		if err != nil {
			return false
		}
		if Seq(words) != p.SEQ || Rrp(words) != p.RRP || Frp(words) != p.FRP {
			return false
		}
		if Dinv(words) != p.DINV || Errstat(words) != p.ERRSTAT {
			return false
		}
		if VerifyCRC(words) != nil {
			return false
		}
		var back Rsp
		if err := DecodeRspInto(&back, words); err != nil {
			return false
		}
		return back.SEQ == p.SEQ && back.RRP == p.RRP && back.FRP == p.FRP &&
			back.DINV == p.DINV && back.ERRSTAT == p.ERRSTAT
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestVerifyCRC: a pristine packet verifies; flipping any single bit
// (including in the CRC field itself) fails with the typed error.
func TestVerifyCRC(t *testing.T) {
	r := &Rqst{Cmd: hmccmd.WR64, ADRS: 0x4040, TAG: 9, Payload: make([]uint64, 8)}
	for i := range r.Payload {
		r.Payload[i] = uint64(i) * 0x0101010101010101
	}
	words, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCRC(words); err != nil {
		t.Fatalf("pristine packet: %v", err)
	}
	for w := range words {
		for bit := 0; bit < 64; bit += 7 { // stride keeps the test fast
			words[w] ^= 1 << bit
			if err := VerifyCRC(words); !errors.Is(err, ErrBadCRC) {
				t.Fatalf("word %d bit %d: corruption not detected (%v)", w, bit, err)
			}
			words[w] ^= 1 << bit
		}
	}
	if err := VerifyCRC(nil); !errors.Is(err, ErrNilPacket) {
		t.Errorf("nil packet: %v", err)
	}
}

// TestRefreshCRC: hand-editing the wire image invalidates the CRC;
// RefreshCRC makes it verify (and decode) again.
func TestRefreshCRC(t *testing.T) {
	r := &Rqst{Cmd: hmccmd.RD16, ADRS: 0x100, TAG: 1}
	words, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	words[0] ^= 1 << 12 // tweak the TAG field
	if err := VerifyCRC(words); !errors.Is(err, ErrBadCRC) {
		t.Fatal("edit not detected")
	}
	RefreshCRC(words)
	if err := VerifyCRC(words); err != nil {
		t.Fatalf("refreshed packet: %v", err)
	}
	if _, err := DecodeRqst(words); err != nil {
		t.Fatalf("refreshed packet failed decode: %v", err)
	}
}

// TestSetPoison: poisoning keeps the packet CRC-valid and the bit is
// visible both to the accessor and to the decoder.
func TestSetPoison(t *testing.T) {
	r := &Rqst{Cmd: hmccmd.RD16, ADRS: 0x200, TAG: 2}
	words, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	SetPoison(words, true)
	if !Poison(words) {
		t.Fatal("poison bit not set")
	}
	if err := VerifyCRC(words); err != nil {
		t.Fatalf("poisoned packet fails CRC: %v", err)
	}
	dec, err := DecodeRqst(words)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Pb {
		t.Fatal("decoded Pb false")
	}
	SetPoison(words, false)
	if Poison(words) || VerifyCRC(words) != nil {
		t.Fatal("unpoison failed")
	}
}

// FuzzTailFieldAccessors: for any wire image the decoder accepts, the
// raw-word accessors must agree with the decoded struct fields — pinned
// alongside the existing decode fuzz corpus.
func FuzzTailFieldAccessors(f *testing.F) {
	seedRqst := &Rqst{Cmd: hmccmd.WR64, ADRS: 0x1000, TAG: 7, RRP: 5, FRP: 9,
		SEQ: 3, Pb: true, Payload: make([]uint64, 8)}
	if words, err := seedRqst.Encode(); err == nil {
		b := make([]byte, 8*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint64(b[8*i:], w)
		}
		f.Add(b)
	}
	seedRsp := &Rsp{Cmd: hmccmd.RdRS, TAG: 3, LNG: 2, SEQ: 6, RRP: 17, FRP: 200,
		DINV: true, ERRSTAT: 0x33, Payload: []uint64{1, 2}}
	if words, err := seedRsp.Encode(); err == nil {
		b := make([]byte, 8*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint64(b[8*i:], w)
		}
		f.Add(b)
	}
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		words := wordsOf(data)
		if len(words) == 0 {
			return
		}
		if r, err := DecodeRqst(words); err == nil {
			if Seq(words) != r.SEQ || Rrp(words) != r.RRP || Frp(words) != r.FRP || Poison(words) != r.Pb {
				t.Fatalf("rqst accessors disagree with decode: %+v", r)
			}
			if VerifyCRC(words) != nil {
				t.Fatal("decoder accepted a packet VerifyCRC rejects")
			}
		}
		if p, err := DecodeRsp(words); err == nil {
			if Seq(words) != p.SEQ || Rrp(words) != p.RRP || Frp(words) != p.FRP ||
				Dinv(words) != p.DINV || Errstat(words) != p.ERRSTAT {
				t.Fatalf("rsp accessors disagree with decode: %+v", p)
			}
		}
		// RefreshCRC must make any sized packet verify.
		cp := append([]uint64(nil), words...)
		RefreshCRC(cp)
		if err := VerifyCRC(cp); err != nil {
			t.Fatalf("RefreshCRC did not normalize: %v", err)
		}
	})
}
