package device

import (
	"repro/internal/config"
	"repro/internal/queue"
)

// Crossbar models the logic-layer switch connecting links to vaults. It
// keeps one request queue and one response queue per link (paper §V-B:
// "a logic-layer crossbar queue depth of 128 slots"); the additional
// queues of an 8-link device are the source of its extra buffering
// capacity — the mechanism the paper credits for the 8Link device's
// slightly better behaviour beyond fifty threads (§V-C).
type Crossbar struct {
	rqst []*queue.Queue[*Flight]
	rsp  []*queue.Queue[*Flight]
}

func newCrossbar(cfg config.Config) *Crossbar {
	x := &Crossbar{
		rqst: make([]*queue.Queue[*Flight], cfg.Links),
		rsp:  make([]*queue.Queue[*Flight], cfg.Links),
	}
	for i := 0; i < cfg.Links; i++ {
		x.rqst[i] = queue.New[*Flight](cfg.XbarDepth)
		x.rsp[i] = queue.New[*Flight](cfg.XbarDepth)
	}
	return x
}

// RqstStats returns the request-queue statistics for one link port.
func (x *Crossbar) RqstStats(link int) queue.Stats { return x.rqst[link].Stats() }

// RspStats returns the response-queue statistics for one link port.
func (x *Crossbar) RspStats(link int) queue.Stats { return x.rsp[link].Stats() }

// TotalOccupancy returns the summed occupancy of all crossbar queues.
func (x *Crossbar) TotalOccupancy() int {
	n := 0
	for i := range x.rqst {
		n += x.rqst[i].Len() + x.rsp[i].Len()
	}
	return n
}
