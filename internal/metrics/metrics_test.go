package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("dev", "0"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instrument.
	if r.Counter("reqs_total", L("dev", "0")) != c {
		t.Error("re-registration returned a different counter")
	}
	// Different labels are distinct.
	if r.Counter("reqs_total", L("dev", "1")) == c {
		t.Error("distinct labels shared an instrument")
	}

	g := r.Gauge("occupancy")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	bc := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != bc {
		t.Error("label order changed metric identity")
	}
	m := r.Lookup("m", L("b", "2"), L("a", "1"))
	if m == nil || m.Key() != "m{a=1,b=2}" {
		t.Errorf("Lookup/Key = %v", m)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_cycles")
	for _, v := range []uint64{6, 6, 9, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 121 || s.Min != 6 || s.Max != 100 {
		t.Errorf("snapshot = %+v", s)
	}
	if got := s.Avg(); got != 121.0/4 {
		t.Errorf("Avg = %v", got)
	}
	// Bucket layout matches stats.Histogram.
	sh := s.Hist()
	if sh.N() != 4 {
		t.Errorf("stats view N = %d", sh.N())
	}
	if p := sh.Percentile(50); p != 8 {
		t.Errorf("p50 = %d, want 8 (6,6,9,100 -> bucket (4,8])", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Avg() != 0 {
		t.Errorf("empty snapshot = %+v avg=%v", s, s.Avg())
	}
}

func TestFuncs(t *testing.T) {
	r := NewRegistry()
	v := uint64(41)
	r.CounterFunc("pulled_total", func() uint64 { return v })
	r.GaugeFunc("level", func() float64 { return 2.5 })
	v++
	m := r.Lookup("pulled_total")
	if m == nil || m.Number() != 42 {
		t.Errorf("CounterFunc read %v", m)
	}
	if g := r.Lookup("level"); g == nil || g.Number() != 2.5 {
		t.Errorf("GaugeFunc read %v", g)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", L("dev", "0")) // same name, different kind
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid name did not panic")
		}
	}()
	r.Counter("1bad name")
}

func TestEachSortedDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total")
	r.Counter("a_total", L("dev", "1"))
	r.Counter("a_total", L("dev", "0"))
	var keys []string
	r.Each(func(m *Metric) { keys = append(keys, m.Key()) })
	want := "a_total{dev=0},a_total{dev=1},b_total"
	if got := strings.Join(keys, ","); got != want {
		t.Errorf("Each order = %s, want %s", got, want)
	}
}

func TestMetricName(t *testing.T) {
	if MetricName("a{b=c}") != "a" || MetricName("plain") != "plain" {
		t.Error("MetricName parse")
	}
}

// TestConcurrentHotPath exercises Inc/Observe from many goroutines under
// the race detector (scripts/ci.sh runs this package with -race) and
// checks the totals.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h_cycles")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(seed + uint64(i)%17)
			}
		}(uint64(w))
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if s := h.Snapshot(); s.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*per)
	}
}

// TestHotPathZeroAlloc pins the documented zero-allocation contract of
// the push instruments.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_cycles")
	n := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(int64(n))
		g.Add(-1)
		h.Observe(n)
		n += 13
	})
	if allocs != 0 {
		t.Errorf("hot path allocated %.1f allocs/op, want 0", allocs)
	}
}
