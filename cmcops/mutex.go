// Package cmcops is the sample Custom Memory Cube operation library: the
// "user library structure" of paper §IV-D, kept outside the simulator
// core exactly as the paper's separable-implementation requirement
// demands.
//
// The package provides the paper's case study (§V-A, Table V) — three
// operations implementing an atomic mutex in any 16-byte block of HMC
// memory — plus two demonstration operations showing non-mutex uses of
// the CMC command space.
//
// # The HMC mutex data structure (paper Figure 4)
//
// A mutex occupies one 16-byte (one data FLIT) block:
//
//	bits [63:0]    lock value; any non-zero value means locked
//	bits [127:64]  thread/task ID of the current owner (undefined when
//	               the lock is clear)
//
// All operations carry the requesting thread ID in the first word of the
// two-FLIT request packet.
package cmcops

import (
	"repro/internal/cmc"
	"repro/internal/hmccmd"
	"repro/internal/mem"
)

// Thread-visible return values of hmc_lock and hmc_unlock.
const (
	// RetSuccess is returned in the response payload when the lock or
	// unlock took effect.
	RetSuccess = 1
	// RetFailure is returned when the operation did not take effect.
	RetFailure = 0
)

// Lock implements the hmc_lock operation (Table V, command code 125):
//
//	IF (ADDR[63:0] == 0) { ADDR[127:64] = TID; ADDR[63:0] = 1; RET 1 }
//	ELSE { RET 0 }
//
// The request payload word 0 carries the requesting thread ID; the
// response payload word 0 carries 1 on success and 0 on failure.
type Lock struct{}

// Register implements cmc.Operation.
func (Lock) Register() cmc.Descriptor {
	return cmc.Descriptor{
		OpName:  "hmc_lock",
		Rqst:    hmccmd.CMC125,
		Cmd:     125,
		RqstLen: 2,
		RspLen:  2,
		RspCmd:  hmccmd.WrRS,
	}
}

// Str implements cmc.Operation.
func (Lock) Str() string { return "hmc_lock" }

// Execute implements cmc.Operation.
func (Lock) Execute(ctx *cmc.ExecContext) error {
	tid := ctx.RqstPayload[0]
	base := ctx.Addr &^ 0xF
	blk, err := ctx.Mem.ReadBlock(base)
	if err != nil {
		return err
	}
	if blk.Lo == 0 {
		if err := ctx.Mem.WriteBlock(base, mem.Block{Lo: 1, Hi: tid}); err != nil {
			return err
		}
		ctx.RspPayload[0] = RetSuccess
	} else {
		ctx.RspPayload[0] = RetFailure
	}
	return nil
}

// TryLock implements the hmc_trylock operation (Table V, command code
// 126). If the lock is free it is acquired for the requesting thread;
// either way the response payload word 0 carries the thread ID that owns
// the lock after the operation — "it is up to the encountering thread to
// check the response payload against its respective thread ID" (§V-A).
type TryLock struct{}

// Register implements cmc.Operation.
func (TryLock) Register() cmc.Descriptor {
	return cmc.Descriptor{
		OpName:  "hmc_trylock",
		Rqst:    hmccmd.CMC126,
		Cmd:     126,
		RqstLen: 2,
		RspLen:  2,
		RspCmd:  hmccmd.RdRS,
	}
}

// Str implements cmc.Operation.
func (TryLock) Str() string { return "hmc_trylock" }

// Execute implements cmc.Operation.
func (TryLock) Execute(ctx *cmc.ExecContext) error {
	tid := ctx.RqstPayload[0]
	base := ctx.Addr &^ 0xF
	blk, err := ctx.Mem.ReadBlock(base)
	if err != nil {
		return err
	}
	if blk.Lo == 0 {
		if err := ctx.Mem.WriteBlock(base, mem.Block{Lo: 1, Hi: tid}); err != nil {
			return err
		}
		ctx.RspPayload[0] = tid
	} else {
		ctx.RspPayload[0] = blk.Hi
	}
	return nil
}

// Unlock implements the hmc_unlock operation (Table V, command code 127):
//
//	IF (ADDR[127:64] == TID && ADDR[63:0] == 1) { ADDR[63:0] = 0; RET 1 }
//	ELSE { RET 0 }
//
// Only the owning thread can release the lock.
type Unlock struct{}

// Register implements cmc.Operation.
func (Unlock) Register() cmc.Descriptor {
	return cmc.Descriptor{
		OpName:  "hmc_unlock",
		Rqst:    hmccmd.CMC127,
		Cmd:     127,
		RqstLen: 2,
		RspLen:  2,
		RspCmd:  hmccmd.WrRS,
	}
}

// Str implements cmc.Operation.
func (Unlock) Str() string { return "hmc_unlock" }

// Execute implements cmc.Operation.
func (Unlock) Execute(ctx *cmc.ExecContext) error {
	tid := ctx.RqstPayload[0]
	base := ctx.Addr &^ 0xF
	blk, err := ctx.Mem.ReadBlock(base)
	if err != nil {
		return err
	}
	if blk.Hi == tid && blk.Lo == 1 {
		if err := ctx.Mem.WriteBlock(base, mem.Block{Lo: 0, Hi: blk.Hi}); err != nil {
			return err
		}
		ctx.RspPayload[0] = RetSuccess
	} else {
		ctx.RspPayload[0] = RetFailure
	}
	return nil
}

// MutexOps returns the coupled mutex operation set in load order.
func MutexOps() []cmc.Operation {
	return []cmc.Operation{Lock{}, TryLock{}, Unlock{}}
}

func init() {
	cmc.RegisterFactory("hmc_lock", func() cmc.Operation { return Lock{} })
	cmc.RegisterFactory("hmc_trylock", func() cmc.Operation { return TryLock{} })
	cmc.RegisterFactory("hmc_unlock", func() cmc.Operation { return Unlock{} })
}
