// Command hmc-mutex reproduces the paper's CMC mutex evaluation (§V):
// Algorithm 1 driven from 2..100 simulated threads against the 4Link-4GB
// and 8Link-8GB configurations, reporting the MIN/MAX/AVG cycle metrics
// of Figures 5-7 and the sweep extrema of Table VI.
//
// Usage:
//
//	hmc-mutex                  # Table VI plus all three figure series
//	hmc-mutex -figure 6        # one figure's series only
//	hmc-mutex -table           # Table VI only
//	hmc-mutex -lo 2 -hi 50     # restrict the thread sweep
//	hmc-mutex -csv out.csv     # machine-readable sweep dump
//	hmc-mutex -workers 0       # sweep across all schedulable cores (default)
//	hmc-mutex -workers 1       # serial sweep
//	hmc-mutex -exec-workers 8  # pooled vault execution inside each run
//
// Observability:
//
//	hmc-mutex -listen :8080         # live endpoint: /metrics, /debug/vars, /debug/pprof/
//	hmc-mutex -sample series.jsonl  # cycle-indexed time series from one
//	                                # fully instrumented run per config
//	                                # (tabulate with: hmc-trace -sample series.jsonl)
//	hmc-mutex -spans -span-out spans.json
//	                                # request-lifecycle span trace from one
//	                                # instrumented run per config (load the
//	                                # JSON at ui.perfetto.dev)
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	hmcsim "repro"
	"repro/internal/metricsflag"
	"repro/internal/spanflag"
)

func main() {
	lo := flag.Int("lo", 2, "lowest thread count")
	hi := flag.Int("hi", 100, "highest thread count")
	addr := flag.Uint64("addr", 0x40, "lock block address")
	figure := flag.Int("figure", 0, "print only one figure series (5, 6 or 7)")
	tableOnly := flag.Bool("table", false, "print only Table VI")
	csvPath := flag.String("csv", "", "write the full sweep to a CSV file")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = one per schedulable core, i.e. GOMAXPROCS; 1 = serial; each worker reuses one simulator session across its points)")
	metricsFlags := metricsflag.Register()
	samplePath := flag.String("sample", "", "write a cycle-indexed metrics time series (JSONL) from one instrumented run per config")
	sampleEvery := flag.Uint64("sample-every", 64, "time-series sampling period in device cycles")
	sampleThreads := flag.Int("sample-threads", 0, "thread count for the instrumented sample runs (0 = hi)")
	faultRate := flag.Float64("fault-rate", 0, "per-traversal link fault probability in [0,1] (0 disables injection)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injection seed; the same seed reproduces the exact fault sequence")
	faultKinds := flag.String("fault-kinds", "all", "comma-separated fault kinds: crc, flip, drop, down or all")
	execWorkers := flag.Int("exec-workers", 1, "parallel cycle engine workers inside each simulation (1 = serial; -workers sizes the sweep pool, this sizes the per-run vault/device stepping pool)")
	eventClock := flag.Bool("event-clock", true, "event-driven cycle scheduler: fast-forward provably idle spans (false = per-cycle reference engine)")
	spanFlags := spanflag.Register()
	flag.Parse()

	if *lo < 2 || *hi < *lo {
		fmt.Fprintln(os.Stderr, "hmc-mutex: need 2 <= lo <= hi")
		os.Exit(2)
	}

	var opts []hmcsim.Option
	if *execWorkers > 1 {
		opts = append(opts, hmcsim.WithParallelClock(*execWorkers))
	}
	if !*eventClock {
		opts = append(opts, hmcsim.WithEventClock(false))
	}
	if *faultRate > 0 {
		kinds, err := hmcsim.ParseFaultKinds(*faultKinds)
		if err != nil {
			fatal(err)
		}
		plan := hmcsim.FaultPlan{Rate: *faultRate, Seed: *faultSeed, Kinds: kinds}
		opts = append(opts, hmcsim.WithFaults(plan))
		fmt.Fprintf(os.Stderr, "hmc-mutex: fault injection: %v\n", plan)
	}

	// The sweep builds thousands of short-lived simulators, so the live
	// endpoint exposes aggregate push counters fed by the per-run progress
	// hook rather than registering every simulator.
	var progress func(hmcsim.MutexRun)
	if metricsFlags.Listen != "" {
		reg := hmcsim.NewMetricsRegistry()
		progress = metricsflag.SweepProgress(reg)
		if _, err := metricsFlags.Serve("hmc-mutex", reg); err != nil {
			fatal(err)
		}
	}

	four, err := hmcsim.MutexSweepWithProgress(hmcsim.FourLink4GB(), *lo, *hi, *addr, *workers, progress, opts...)
	if err != nil {
		fatal(err)
	}
	eight, err := hmcsim.MutexSweepWithProgress(hmcsim.EightLink8GB(), *lo, *hi, *addr, *workers, progress, opts...)
	if err != nil {
		fatal(err)
	}

	if *samplePath != "" {
		threads := *sampleThreads
		if threads <= 0 {
			threads = *hi
		}
		if err := writeSampleSeries(*samplePath, *sampleEvery, threads, *addr, opts); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (threads=%d, every %d cycles)\n", *samplePath, threads, *sampleEvery)
	}

	// The sweep itself builds thousands of simulators, so span tracing
	// runs as one extra instrumented mutex run per configuration (the
	// -sample pattern) rather than recording every sweep point.
	if tr := spanFlags.Tracer(); tr != nil {
		threads := *sampleThreads
		if threads <= 0 {
			threads = *hi
		}
		for _, cfg := range []hmcsim.Config{hmcsim.FourLink4GB(), hmcsim.EightLink8GB()} {
			if _, err := hmcsim.RunMutex(cfg, threads, *addr,
				append([]hmcsim.Option{hmcsim.WithSpans(tr)}, opts...)...); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("span-traced mutex runs (threads=%d):\n", threads)
		if err := spanFlags.Finish(os.Stdout, tr); err != nil {
			fatal(err)
		}
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, four, eight); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	if *figure == 0 || *tableOnly {
		printTableVI(four, eight)
	}
	if !*tableOnly {
		if *figure == 0 || *figure == 5 {
			printFigure(5, "Minimum Lock Cycles", four, eight, func(r hmcsim.MutexRun) float64 { return float64(r.Min) })
		}
		if *figure == 0 || *figure == 6 {
			printFigure(6, "Maximum Lock Cycles", four, eight, func(r hmcsim.MutexRun) float64 { return float64(r.Max) })
		}
		if *figure == 0 || *figure == 7 {
			printFigure(7, "Average Lock Cycles", four, eight, func(r hmcsim.MutexRun) float64 { return r.Avg })
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmc-mutex:", err)
	os.Exit(1)
}

// writeSampleSeries reruns the mutex workload once per configuration with
// the full metrics stack attached — device counters, per-class latency
// histograms, power gauges, workload completion histograms — sampling the
// registry every `every` cycles into one shared JSONL stream. Each run is
// tagged with its config and thread count, and a final unconditional
// sample captures the end-of-run state (completion histograms fill after
// the last periodic sample).
func writeSampleSeries(path string, every uint64, threads int, lockAddr uint64, extra []hmcsim.Option) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, cfg := range []hmcsim.Config{hmcsim.FourLink4GB(), hmcsim.EightLink8GB()} {
		reg := hmcsim.NewMetricsRegistry()
		sm := hmcsim.NewMetricsSampler(reg, f, every, hmcsim.WithSamplerTags(
			hmcsim.MetricsL("config", cfg.String()),
			hmcsim.MetricsL("threads", strconv.Itoa(threads)),
		))
		var handle *hmcsim.Simulator
		opts := append([]hmcsim.Option{
			hmcsim.WithMetrics(reg),
			hmcsim.WithSampler(sm),
			hmcsim.WithPower(hmcsim.DefaultPowerParams()),
			hmcsim.WithObserver(func(s *hmcsim.Simulator) { handle = s }),
		}, extra...)
		if _, err := hmcsim.RunMutex(cfg, threads, lockAddr, opts...); err != nil {
			return fmt.Errorf("sample run %s: %w", cfg, err)
		}
		sm.Sample(handle.Cycle())
		if err := sm.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func printTableVI(four, eight hmcsim.MutexSweepResult) {
	fmt.Println("Table VI: CMC Mutex Operations (sweep extrema)")
	fmt.Printf("%-12s %-16s %-16s %-16s\n", "Device", "Min Cycle Count", "Max Cycle Count", "Avg Cycle Count")
	for _, sweep := range []hmcsim.MutexSweepResult{four, eight} {
		minC, maxC, maxAvg := sweep.TableVI()
		fmt.Printf("%-12s %-16d %-16d %-16.2f\n", sweep.Config, minC, maxC, maxAvg)
	}
	fmt.Println()
}

func printFigure(n int, title string, four, eight hmcsim.MutexSweepResult, pick func(hmcsim.MutexRun) float64) {
	fmt.Printf("Figure %d: %s\n", n, title)
	fmt.Printf("%-8s %-14s %-14s\n", "Threads", four.Config.String(), eight.Config.String())
	for i := range four.Runs {
		fmt.Printf("%-8d %-14.2f %-14.2f\n", four.Runs[i].Threads, pick(four.Runs[i]), pick(eight.Runs[i]))
	}
	fmt.Println()
}

func writeCSV(path string, sweeps ...hmcsim.MutexSweepResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"config", "threads", "min_cycle", "max_cycle", "avg_cycle", "trylocks", "send_stalls"}); err != nil {
		return err
	}
	for _, sweep := range sweeps {
		for _, r := range sweep.Runs {
			rec := []string{
				sweep.Config.String(),
				strconv.Itoa(r.Threads),
				strconv.FormatUint(r.Min, 10),
				strconv.FormatUint(r.Max, 10),
				strconv.FormatFloat(r.Avg, 'f', 2, 64),
				strconv.FormatUint(r.Trylocks, 10),
				strconv.FormatUint(r.SendStalls, 10),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
