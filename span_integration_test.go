package hmcsim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// The span tracer is observational by construction: attaching it must
// not move a single packet, and leaving it off must leave the clock
// loop allocation-free. These tests pin both directions of that
// contract at the simulator level, plus the exporter invariants the
// acceptance criteria name: Perfetto nesting for a 2-cube faulted
// round trip and stage cycles telescoping to end-to-end latency.

// TestSpansStatsIdentity runs the traced mutex workload with and
// without a span tracer attached and compares every observable —
// run results, device stats, queue stats, and the JSONL trace byte
// for byte. Spans on or off, the simulation is the same simulation.
func TestSpansStatsIdentity(t *testing.T) {
	cfg := FourLink4GB()
	base := runMutexMode(t, cfg, 16, false)
	spanned := runMutexMode(t, cfg, 16, false, WithSpans(NewSpanTracer(SpanConfig{})))
	compareCaptures(t, "spans-attached", base, spanned, true)
}

// TestSpansEventClockConsistency pins that the event-driven scheduler's
// fast-forward stamps spans on the same cycles as the per-cycle
// reference engine: identical event streams, identical attribution.
func TestSpansEventClockConsistency(t *testing.T) {
	record := func(eventClock bool) []SpanEvent {
		tr := NewSpanTracer(SpanConfig{})
		opts := []Option{WithSpans(tr)}
		if !eventClock {
			opts = append(opts, WithEventClock(false))
		}
		if _, err := RunMutex(FourLink4GB(), 12, 0x40, opts...); err != nil {
			t.Fatal(err)
		}
		return tr.Events()
	}
	ev := record(true)
	ref := record(false)
	if len(ev) == 0 {
		t.Fatal("no span events recorded")
	}
	if !reflect.DeepEqual(ev, ref) {
		t.Fatalf("event-clock span stream diverges from reference: %d vs %d events",
			len(ev), len(ref))
	}
}

// TestClockLoopSpansOffZeroAlloc pins the disabled path: a simulator
// built without WithSpans must keep the steady-state round trip at
// zero allocations — the nil-tracer branches cost a compare, never an
// allocation.
func TestClockLoopSpansOffZeroAlloc(t *testing.T) {
	skipIfRace(t)
	s, err := New(FourLink4GB())
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildRead(0, 0x1000, 1, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	trip := func() {
		if err := s.Send(0, r); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 16; c++ {
			s.Clock()
			if rsp, ok := s.Recv(0); ok {
				ReleaseRsp(rsp)
				return
			}
		}
		t.Fatal("no response within 16 cycles")
	}
	trip() // warm the pools before counting
	if allocs := testing.AllocsPerRun(200, trip); allocs != 0 {
		t.Errorf("spans-off round trip: %.1f allocs/op, want 0", allocs)
	}
}

// TestSpanAttributionSumAcrossRun pins the acceptance invariant at the
// workload level: over a full contended mutex run, per-stage cycles
// telescope to exactly the summed end-to-end latencies.
func TestSpanAttributionSumAcrossRun(t *testing.T) {
	tr := NewSpanTracer(SpanConfig{Capacity: 1 << 18})
	if _, err := RunMutex(FourLink4GB(), 24, 0x40, WithSpans(tr)); err != nil {
		t.Fatal(err)
	}
	a := SpanAttribute(tr.Events())
	if a.Spans == 0 {
		t.Fatal("no spans attributed")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; capacity too small for the invariant check", tr.Dropped())
	}
	if uint64(a.Spans) != tr.Completed() {
		t.Fatalf("attributed %d spans, tracer completed %d", a.Spans, tr.Completed())
	}
	var sum uint64
	for _, s := range a.Stages {
		sum += s.Cycles
	}
	if sum != a.TotalCycles {
		t.Fatalf("stage cycles sum %d != total end-to-end cycles %d", sum, a.TotalCycles)
	}
}

// perfettoDump is the subset of the Chrome trace-event schema the
// golden test reads back.
type perfettoDump struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   uint64         `json:"ts"`
		Dur  uint64         `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestSpanPerfettoGolden2Cube is the acceptance golden: a known 2-cube
// chain with deterministic CRC faults, read round trips against the
// remote cube, exported to Perfetto JSON and parsed back. Every
// umbrella span must contain its stage spans, the stage durations must
// sum to the umbrella duration, the remote traffic must show topology
// hop spans, and the injected fault must appear as an instant marker.
func TestSpanPerfettoGolden2Cube(t *testing.T) {
	cfg := TwoGBDev()
	cfg.LinkFaultPeriod = 3 // every 3rd link traversal takes a CRC fault
	tr := NewSpanTracer(SpanConfig{})
	s, err := New(cfg, WithDevices(2, TopoChain), WithSpans(tr))
	if err != nil {
		t.Fatal(err)
	}
	// Four remote reads: enough traversals that the periodic injector
	// fires on traffic the tracer is following.
	for i := 0; i < 4; i++ {
		r, err := BuildRead(1, 0x1000, uint16(i+1), 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Send(0, r); err != nil {
			t.Fatal(err)
		}
		for c := 0; ; c++ {
			s.Clock()
			if rsp, ok := s.Recv(0); ok {
				ReleaseRsp(rsp)
				break
			}
			if c > 10000 {
				t.Fatal("remote read never completed")
			}
		}
	}
	if got := tr.Completed(); got != 4 {
		t.Fatalf("completed %d spans, want 4", got)
	}

	var buf bytes.Buffer
	if err := WriteSpanPerfetto(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var dump perfettoDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v", err)
	}

	type window struct{ ts, end uint64 }
	umbrella := map[int]window{} // host tid (= tag) -> span window
	stageSum := map[int]uint64{}
	var topoSpans, faults int
	for _, e := range dump.TraceEvents {
		switch {
		case e.Ph == "X" && e.Pid == 1: // host umbrella, tid = tag
			if _, dup := umbrella[e.Tid]; dup {
				t.Fatalf("tag %d has two umbrella spans", e.Tid)
			}
			umbrella[e.Tid] = window{e.Ts, e.Ts + e.Dur}
		case e.Ph == "X": // stage span on a component track
			tag := int(e.Args["tag"].(float64))
			stageSum[tag] += e.Dur
			if e.Pid == 2 { // topology process
				topoSpans++
			}
		case e.Ph == "i" && e.Name == "link.fault":
			faults++
		}
	}
	if len(umbrella) != 4 {
		t.Fatalf("umbrella spans for %d tags, want 4", len(umbrella))
	}
	if topoSpans == 0 {
		t.Error("remote round trips produced no topology hop spans")
	}
	if faults == 0 {
		t.Error("periodic CRC injector left no fault instants in the trace")
	}
	// Nesting: every stage span of a tag lies inside its umbrella, and
	// the stage durations telescope to the umbrella duration.
	for _, e := range dump.TraceEvents {
		if e.Ph != "X" || e.Pid == 1 {
			continue
		}
		tag := int(e.Args["tag"].(float64))
		u, ok := umbrella[tag]
		if !ok {
			t.Fatalf("stage span %q has no umbrella for tag %d", e.Name, tag)
		}
		if e.Ts < u.ts || e.Ts+e.Dur > u.end {
			t.Errorf("stage %q [%d,%d) escapes umbrella [%d,%d) of tag %d",
				e.Name, e.Ts, e.Ts+e.Dur, u.ts, u.end, tag)
		}
	}
	for tag, u := range umbrella {
		if got, want := stageSum[tag], u.end-u.ts; got != want {
			t.Errorf("tag %d: stage durations sum to %d, umbrella spans %d", tag, got, want)
		}
	}
}
