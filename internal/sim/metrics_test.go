package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/hmccmd"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/topo"
)

// TestMetricsWiring drives a read through an instrumented simulator and
// checks that the device counters, per-class latency histograms and power
// gauges all surface through the registry. Scraping happens only while
// the simulation is idle, matching the documented synchronization model
// (the Func instruments read simulator state without locks).
func TestMetricsWiring(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newSim(t, WithMetrics(reg), WithPower(power.DefaultParams()))

	rd, err := BuildRead(0, 0x4000, 3, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, rd); err != nil {
		t.Fatal(err)
	}
	rsp := drive(t, s, 0)
	ReleaseRsp(rsp)

	lookupVal := func(name string, labels ...metrics.Label) float64 {
		t.Helper()
		m := reg.Lookup(name, labels...)
		if m == nil {
			t.Fatalf("metric %s%v not registered", name, labels)
		}
		return m.Number()
	}

	dev := metrics.L("dev", "0")
	if v := lookupVal("hmc_device_cycles_total", dev); v == 0 {
		t.Error("cycle counter did not advance")
	}
	if v := lookupVal(metrics.NameRqsts, dev, metrics.L("class", "READ")); v != 1 {
		t.Errorf("READ rqsts = %v, want 1", v)
	}
	// FLIT counters: RD64 request is 1 FLIT, its response 5 FLITs.
	if v := lookupVal(metrics.NameLinkFlits, dev, metrics.L("dir", "rqst")); v != 1 {
		t.Errorf("rqst flits = %v, want 1", v)
	}
	if v := lookupVal(metrics.NameLinkFlits, dev, metrics.L("dir", "rsp")); v != 5 {
		t.Errorf("rsp flits = %v, want 5", v)
	}
	if v := lookupVal(metrics.NamePowerTotal); v <= 0 {
		t.Errorf("power total = %v, want > 0", v)
	}

	m := reg.Lookup("hmc_request_latency_cycles", dev, metrics.L("class", hmccmd.ClassRead.String()))
	if m == nil {
		t.Fatal("latency histogram not registered")
	}
	h, ok := m.Histogram()
	if !ok || h.Count != 1 {
		t.Fatalf("latency histogram count = %+v", h)
	}
	// Uncongested round trip is three cycles (device package comment).
	if h.Min != 3 || h.Max != 3 {
		t.Errorf("latency min/max = %d/%d, want 3/3", h.Min, h.Max)
	}

	// Idle queues read zero occupancy after the run drains.
	if v := lookupVal(metrics.NameVaultOccTotal, dev); v != 0 {
		t.Errorf("idle vault occupancy = %v", v)
	}
}

// TestSamplerWiring checks that Clock drives the attached sampler and the
// resulting JSONL stream parses back with the conventional names present.
func TestSamplerWiring(t *testing.T) {
	reg := metrics.NewRegistry()
	var buf bytes.Buffer
	sm := metrics.NewSampler(reg, &buf, 8, metrics.WithTags(metrics.L("config", "4link")))
	s := newSim(t, WithMetrics(reg), WithSampler(sm))
	if s.Sampler() != sm {
		t.Fatal("Sampler accessor")
	}

	rd, err := BuildRead(0, 0x1000, 1, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, rd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		s.Clock()
	}
	if _, ok := s.Recv(0); !ok {
		t.Fatal("no response after 24 cycles")
	}
	if err := sm.Flush(); err != nil {
		t.Fatal(err)
	}

	samples, err := metrics.ParseSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 { // cycles 8, 16, 24
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Cycle != 24 || last.Tags["config"] != "4link" {
		t.Errorf("last sample = cycle %d tags %v", last.Cycle, last.Tags)
	}
	found := false
	for k := range last.Values {
		if strings.HasPrefix(k, metrics.NameLinkFlits) {
			found = true
		}
	}
	if !found {
		t.Errorf("sample missing %s: %v", metrics.NameLinkFlits, last.Values)
	}
}

// TestMetricsMultiDevice checks per-device label separation in a chained
// topology.
func TestMetricsMultiDevice(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := New(config.FourLink4GB(), WithMetrics(reg), WithDevices(2, topo.KindChain))
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	if reg.Lookup("hmc_device_cycles_total", metrics.L("dev", "0")) == nil ||
		reg.Lookup("hmc_device_cycles_total", metrics.L("dev", "1")) == nil {
		t.Error("per-device counters missing")
	}
}
