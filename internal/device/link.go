package device

import (
	"repro/internal/packet"
	"repro/internal/queue"
)

// Link models one host-facing HMC link: a request queue carrying packets
// into the device and a response queue carrying packets back to the host.
//
// HMC links may source from a host processor or from another cube when
// devices are chained (the 1.0 chaining feature, routed by the topology
// layer above the device); the device model itself is agnostic — both
// kinds of traffic enter through the same queues.
//
// Links are embedded by value in the device, with their queue ring
// buffers carved from one device-wide backing array (see device.New), so
// building a device costs O(1) allocations regardless of link count.
type Link struct {
	// ID is the link index, matching the SLID field of packets that enter
	// on it.
	ID   int
	rqst queue.Queue[*Flight]
	rsp  queue.Queue[*Flight]

	// Retry-protocol state (per direction): traversal counters drive the
	// deterministic fault injector, and retryUntil parks the head packet
	// while a retry sequence (error abort, IRTRY, retransmit) plays out.
	rqstTraversals, rspTraversals uint64
	rqstRetryUntil, rspRetryUntil uint64
	// Retries counts completed retry sequences on this link.
	Retries uint64

	// wire is the link's scratch FLIT buffer for the wire-level host API
	// (SendWire/RecvWire): encoded packets land here so the codec runs
	// without per-packet buffer allocation.
	wire []uint64
	// wireRqst is the link's scratch decode target for SendWire.
	wireRqst packet.Rqst
}

func (l *Link) init(id, depth int, carve func(int) []*Flight) {
	l.ID = id
	l.rqst.InitWithBuf(carve(depth))
	l.rsp.InitWithBuf(carve(depth))
}

// RqstStats returns the request queue statistics.
func (l *Link) RqstStats() queue.Stats { return l.rqst.Stats() }

// RspStats returns the response queue statistics.
func (l *Link) RspStats() queue.Stats { return l.rsp.Stats() }

// RqstLen returns the current request queue occupancy.
func (l *Link) RqstLen() int { return l.rqst.Len() }

// RspLen returns the current response queue occupancy.
func (l *Link) RspLen() int { return l.rsp.Len() }
