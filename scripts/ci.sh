#!/usr/bin/env sh
# CI gate: build, vet, full test suite, then the race detector over the
# packages with concurrent hot paths (the parallel clock and its striped
# barrier pool, the event-driven scheduler in the topology layer, the
# sharded store, the atomic metrics registry, the span tracer fed from
# pool workers and concurrently stepped cubes, the fault injector
# feeding the parallel sweep, and the sim-layer composition of all of
# them), the engine-equivalence suites under -race, the zero-alloc
# smoke pinning the topo clock's allocation-free forwarding and the
# spans-disabled clock loop, and finally a 1-iteration benchmark smoke
# so every benchmark at least compiles and executes (~5s; it measures
# nothing).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/device ./internal/fault ./internal/mem ./internal/metrics ./internal/server ./internal/sim ./internal/span ./internal/topo ./internal/workload
go test -race -run 'TestParallelClock|TestClockModeEquivalence|TestSerialPooledWorkloadEquivalence|TestEventClock|TestSpans' .
# Session-server gate: the 500-session loopback smoke (concurrent
# clients churning a full fleet over one connection) and the wire
# equivalence suite (bit-identical stats and response streams between
# wire-driven and in-process sessions, in all four wire modes — json,
# binary, and the batched variant of each).
go test -run 'TestSmoke500Sessions|TestWireEquivalence' -count=1 ./internal/server
# Batched-load race smoke: a small hmcd-load fleet driving binary
# batched frames through the full client/conn/shard pipeline under the
# race detector — the pipelined client reader, the per-connection mode
# switch, and batch execution on the shards all run concurrently here.
go run -race ./cmd/hmcd-load -sessions 200 -rounds 2 -warmup 1 -conns 4 -workers 8 -proto binary -batch > /dev/null
# Allocation-regression gate: every pin that asserts a hot path stays
# allocation-free (the pins skip themselves under -race, so this is a
# separate non-race invocation). TestClockLoopSpansOffZeroAlloc in the
# root package pins the disabled-tracer clock loop; TestEmitZeroAlloc
# in internal/span pins the recording path itself;
# TestSteadyStateAllocs pins the warm server round trip (clock and
# batched send/recv, both protocols) at single-digit allocs/op.
go test -run 'ZeroAlloc|TestSteadyStateAllocs' -count=1 . ./internal/metrics ./internal/span ./internal/server
go test -run '^$' -bench . -benchtime 1x ./...

# Speed-regression check: re-measure the key hot-path benchmarks and
# diff ns/op against the most recent BENCH_*.json. Growth beyond 10%
# prints a WARNING but does not fail the gate — CI hosts are noisy;
# scripts/bench.sh records the authoritative trajectory.
cd "$(dirname "$0")/.."
baseline="$(ls -1t BENCH_*.json 2>/dev/null | head -1 || true)"
if [ -n "$baseline" ]; then
    go test -run '^$' \
        -bench 'BenchmarkClockLoopCMC$|BenchmarkClockLoop$|BenchmarkCRC|BenchmarkMutexSweepSerial|BenchmarkTopoChainClockSerial' \
        -benchtime 1s . |
    awk -v basefile="$baseline" '
      BEGIN {
        while ((getline line < basefile) > 0) {
          if (match(line, /"name": "[^"]+"/)) {
            name = substr(line, RSTART + 9, RLENGTH - 10)
            if (match(line, /"ns_per_op": [0-9.]+/))
              base[name] = substr(line, RSTART + 13, RLENGTH - 13) + 0
          }
        }
      }
      /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= NF; i++) if ($(i+1) == "ns/op") ns = $i + 0
        if (!(name in base) || base[name] <= 0) next
        growth = (ns - base[name]) / base[name] * 100
        tag = (growth > 10) ? "  <-- WARNING: >10% ns/op growth" : ""
        printf "  %-32s %12.1f -> %-12.1f %+6.1f%%%s\n", name, base[name], ns, growth, tag
      }'
else
    echo "no BENCH_*.json baseline; skipping speed-regression check"
fi
