// Package queue provides the bounded FIFO substrate used throughout the
// simulated device: link request/response queues, crossbar queues and
// vault request queues (paper §V-B: "a request queue depth of 64 slots and
// a logic-layer crossbar queue depth of 128 slots").
//
// Queues collect occupancy statistics so simulations can report queueing
// pressure — the mechanism behind the 4Link/8Link divergence in the
// paper's Figures 5-7.
package queue

import (
	"errors"
	"fmt"
)

// ErrFull is returned by Push when the queue is at capacity; it is the
// queue-level analogue of the simulator's HMC_STALL condition.
var ErrFull = errors.New("queue: full")

// Stats aggregates the lifetime behaviour of one queue.
type Stats struct {
	// Pushes and Pops count successful operations.
	Pushes, Pops uint64
	// Stalls counts Push attempts rejected because the queue was full.
	Stalls uint64
	// MaxOccupancy is the high-water mark of queue length.
	MaxOccupancy int
	// occupancySum accumulates length samples for AvgOccupancy.
	occupancySum uint64
	samples      uint64
}

// AvgOccupancy returns the mean queue length across all Sample calls, or
// zero if the queue was never sampled.
func (s Stats) AvgOccupancy() float64 {
	if s.samples == 0 {
		return 0
	}
	return float64(s.occupancySum) / float64(s.samples)
}

// Samples returns how many occupancy samples have been taken.
func (s Stats) Samples() uint64 { return s.samples }

// Queue is a bounded FIFO over elements of type T. It is not safe for
// concurrent use; the simulator clocks queues from a single goroutine.
//
// The ring buffer behind a queue is materialized lazily: Init records
// only the logical capacity, and Push grows the buffer geometrically
// (starting at minRing slots) up to that capacity as occupancy actually
// demands it. A simulated device carries dozens of deep queues whose
// architected depths (64-128 slots) are rarely approached — a
// many-thousand-session server would otherwise pay tens of kilobytes
// per session for empty ring slots. Stall/occupancy semantics are
// unchanged: Full, ErrFull and every statistic depend only on the
// logical capacity, never on how much of the ring is materialized.
type Queue[T any] struct {
	buf      []T
	head     int
	count    int
	capacity int
	stats    Stats
	// sampleBase, when set, points at the owner's cycle counter. The
	// owner may then skip Sample() on cycles where the queue is empty
	// (an empty sample adds zero occupancy), and Stats() reconstructs
	// the skipped samples arithmetically so results stay bit-identical
	// to sampling every cycle.
	sampleBase *uint64
}

// minRing is the smallest materialized ring; growth doubles from here.
const minRing = 8

// New returns a queue with the given capacity. It panics if capacity is
// not positive, which always indicates a configuration error upstream.
func New[T any](capacity int) *Queue[T] {
	q := new(Queue[T])
	q.Init(capacity)
	return q
}

// Init readies a zero-value queue with the given logical capacity; the
// ring buffer materializes on demand. It lets owners embed queues by
// value instead of holding *Queue indirections. It panics if capacity
// is not positive.
func (q *Queue[T]) Init(capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: invalid capacity %d", capacity))
	}
	*q = Queue[T]{capacity: capacity}
}

// InitWithBuf readies a zero-value queue over a caller-provided ring
// buffer whose length is the queue capacity, fully materialized up
// front. The queue takes ownership of buf, which must be zeroed. It
// panics on an empty buffer.
func (q *Queue[T]) InitWithBuf(buf []T) {
	if len(buf) == 0 {
		panic("queue: empty ring buffer")
	}
	*q = Queue[T]{buf: buf, capacity: len(buf)}
}

// Cap returns the logical queue capacity.
func (q *Queue[T]) Cap() int { return q.capacity }

// Materialized returns how many ring slots are currently allocated —
// at most Cap, and zero until the first Push.
func (q *Queue[T]) Materialized() int { return len(q.buf) }

// Len returns the current number of queued elements.
func (q *Queue[T]) Len() int { return q.count }

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.count == 0 }

// Full reports whether the queue is at capacity.
func (q *Queue[T]) Full() bool { return q.count == q.capacity }

// grow materializes a larger ring: double the current size (starting at
// minRing), capped at the logical capacity, with the occupied span
// copied to the front so the slots beyond it stay zero (the invariant
// Reset's O(Len) clear relies on).
func (q *Queue[T]) grow() {
	n := len(q.buf) * 2
	if n < minRing {
		n = minRing
	}
	if n > q.capacity {
		n = q.capacity
	}
	buf := make([]T, n)
	for i := 0; i < q.count; i++ {
		j := q.head + i
		if j >= len(q.buf) {
			j -= len(q.buf)
		}
		buf[i] = q.buf[j]
	}
	q.buf = buf
	q.head = 0
}

// Push appends v to the tail. A full queue returns ErrFull and records a
// stall.
func (q *Queue[T]) Push(v T) error {
	if q.Full() {
		q.stats.Stalls++
		return ErrFull
	}
	if q.count == len(q.buf) {
		q.grow()
	}
	// head < len and count <= len, so one compare-subtract wraps the
	// insertion index — cheaper than the general modulo's division on
	// this every-cycle path.
	i := q.head + q.count
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = v
	q.count++
	q.stats.Pushes++
	if q.count > q.stats.MaxOccupancy {
		q.stats.MaxOccupancy = q.count
	}
	return nil
}

// Pop removes and returns the head element; ok is false on an empty
// queue.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.count == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.count--
	q.stats.Pops++
	return v, true
}

// Peek returns the head element without removing it; ok is false on an
// empty queue.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.count == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// Sample records the current occupancy into the running statistics. The
// simulator samples every queue once per clock cycle.
func (q *Queue[T]) Sample() {
	q.stats.occupancySum += uint64(q.count)
	q.stats.samples++
}

// AddOccupancySamples records n occupancy samples at the current queue
// length in one step — the reconciliation a cycle skip performs for a
// queue whose contents are provably frozen across the skipped span. It
// is arithmetically identical to calling Sample n times while nothing
// pushes or pops: the occupancy sum grows by length×n, the sample count
// by n, and MaxOccupancy cannot change because the length does not.
func (q *Queue[T]) AddOccupancySamples(n uint64) {
	q.stats.occupancySum += uint64(q.count) * n
	q.stats.samples += n
}

// SetSampleBase ties the queue's sample count to an external cycle
// counter, licensing the owner to skip Sample() while the queue is
// empty: Stats() then reports samples = max(recorded, *cycles), which
// equals sampling every cycle because empty samples contribute zero to
// the occupancy sum and cannot raise MaxOccupancy. Pass nil to detach.
func (q *Queue[T]) SetSampleBase(cycles *uint64) { q.sampleBase = cycles }

// Stats returns a copy of the queue's lifetime statistics.
func (q *Queue[T]) Stats() Stats {
	s := q.stats
	if q.sampleBase != nil && *q.sampleBase > s.samples {
		s.samples = *q.sampleBase
	}
	return s
}

// Reset empties the queue and clears its statistics. Only the occupied
// slots are zeroed: Pop zeroes each slot it vacates, so everything
// outside [head, head+count) is zero already — for a pointer-element
// queue that turns Reset from a write-barrier walk over the whole ring
// into O(Len). (A ring handed to InitWithBuf dirty would break this
// invariant; device construction always carves from fresh memory.)
func (q *Queue[T]) Reset() {
	var zero T
	for i, j := 0, q.head; i < q.count; i++ {
		q.buf[j] = zero
		if j++; j == len(q.buf) {
			j = 0
		}
	}
	q.head = 0
	q.count = 0
	q.stats = Stats{}
}
