// Custom CMC: authoring new memory-cube operations OUTSIDE the simulator
// and loading them at run time — the paper's central workflow (§IV). Two
// .cmc script files next to this program define a fetch-and-add and a
// ticket dispenser; neither exists anywhere in the simulator source.
//
// Run with: go run ./examples/custom-cmc
// (expects to run from the repository root so the ops/ paths resolve;
// pass an alternate directory as the first argument otherwise)
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	hmcsim "repro"
)

func main() {
	dir := "examples/custom-cmc/ops"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	s, err := hmcsim.New(hmcsim.FourLink4GB())
	if err != nil {
		log.Fatal(err)
	}

	// The dlopen moment: parse external .cmc files and bind them to their
	// command codes.
	var cmds []hmcsim.RqstCmd
	for _, file := range []string{"fetchadd64.cmc", "ticket.cmc"} {
		prog, err := hmcsim.LoadCMCScriptFile(filepath.Join(dir, file))
		if err != nil {
			log.Fatal(err)
		}
		if err := s.LoadCMCOp(prog); err != nil {
			log.Fatal(err)
		}
		d := prog.Register()
		fmt.Printf("loaded %-12s -> command code %d (%d-FLIT request, %d-FLIT response)\n",
			d.OpName, d.Cmd, d.RqstLen, d.RspLen)
		cmds = append(cmds, d.Rqst)
	}

	do := func(cmd hmcsim.RqstCmd, addr uint64, payload []uint64) []uint64 {
		r, err := hmcsim.BuildCMC(cmd, 0, addr, 1, 0, payload)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Send(0, r); err != nil {
			log.Fatal(err)
		}
		for {
			s.Clock()
			if rsp, ok := s.Recv(0); ok {
				return rsp.Payload
			}
		}
	}

	fmt.Println("\nfetchadd64 on a counter at 0x100:")
	for _, delta := range []uint64{5, 10, 100} {
		old := do(cmds[0], 0x100, []uint64{delta, 0})
		fmt.Printf("  fetchadd(%3d) -> old value %d\n", delta, old[0])
	}
	d, _ := s.Device(0)
	v, _ := d.Store().ReadUint64(0x100)
	fmt.Printf("  counter now %d\n", v)

	fmt.Println("\nticket dispenser at 0x200:")
	for i := 0; i < 4; i++ {
		out := do(cmds[1], 0x200, nil)
		fmt.Printf("  request %d -> ticket %d (now serving %d)\n", i, out[0], out[1])
	}
}
