package workload

import (
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/packet"
	"repro/internal/sim"
)

func TestStreamTriadCorrectAndScales(t *testing.T) {
	// Single thread.
	r1, err := RunStream(config.FourLink4GB(), 1, 64, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elements != 64*8 {
		t.Errorf("elements = %d", r1.Elements)
	}
	// More threads exploit the vault parallelism of the stride-1 pattern:
	// throughput must improve substantially.
	r8, err := RunStream(config.FourLink4GB(), 8, 64, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Cycles >= r1.Cycles {
		t.Errorf("8 threads (%d cycles) not faster than 1 (%d)", r8.Cycles, r1.Cycles)
	}
	if r8.BytesPerCycle < 2*r1.BytesPerCycle {
		t.Errorf("8-thread throughput %.2f B/c vs 1-thread %.2f B/c; want >2x",
			r8.BytesPerCycle, r1.BytesPerCycle)
	}
	if r8.BandwidthGBs <= 0 || r8.Flits == 0 {
		t.Errorf("result %+v", r8)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, err := RunStream(config.TwoGBDev(), 4, 32, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStream(config.TwoGBDev(), 4, 32, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestGUPSAtomicVerifies(t *testing.T) {
	// RunGUPS internally replays the update stream and verifies memory.
	r, err := RunGUPS(config.FourLink4GB(), GUPSAtomic, 8, 1024, 800)
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates != 800 {
		t.Errorf("updates = %d", r.Updates)
	}
	if r.UpdatesPerKCycle <= 0 {
		t.Errorf("throughput %v", r.UpdatesPerKCycle)
	}
}

func TestGUPSAtomicBeatsBaseline(t *testing.T) {
	// The in-situ atomic halves the round trips and reduces FLIT traffic
	// (the Table II argument on a real kernel): the AMO run must finish
	// faster and move fewer FLITs.
	base, err := RunGUPS(config.FourLink4GB(), GUPSBaseline, 8, 1024, 800)
	if err != nil {
		t.Fatal(err)
	}
	amo, err := RunGUPS(config.FourLink4GB(), GUPSAtomic, 8, 1024, 800)
	if err != nil {
		t.Fatal(err)
	}
	if amo.Cycles >= base.Cycles {
		t.Errorf("AMO %d cycles not faster than baseline %d", amo.Cycles, base.Cycles)
	}
	if amo.Flits >= base.Flits {
		t.Errorf("AMO %d flits not below baseline %d", amo.Flits, base.Flits)
	}
	// Two round trips vs one: roughly 2x time saving.
	speedup := float64(base.Cycles) / float64(amo.Cycles)
	if speedup < 1.5 {
		t.Errorf("AMO speedup %.2fx, want >= 1.5x", speedup)
	}
}

func TestGUPSModeString(t *testing.T) {
	if GUPSAtomic.String() != "amo" || GUPSBaseline.String() != "baseline" {
		t.Error("mode names wrong")
	}
	if BFSCMC.String() != "cmc" || BFSBaseline.String() != "baseline" {
		t.Error("bfs mode names wrong")
	}
}

func TestBFSCMCVisitsAll(t *testing.T) {
	r, err := RunBFS(config.FourLink4GB(), BFSCMC, 8, 500, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Visited != 500 {
		t.Errorf("visited %d of 500", r.Visited)
	}
	if r.DoubleClaims != 0 {
		t.Errorf("atomic visit double-claimed %d", r.DoubleClaims)
	}
	if r.Probes < uint64(r.Edges)/2 {
		t.Errorf("probes %d for %d edges", r.Probes, r.Edges)
	}
}

func TestBFSBaselineVisitsAll(t *testing.T) {
	r, err := RunBFS(config.FourLink4GB(), BFSBaseline, 8, 500, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Visited != 500 {
		t.Errorf("visited %d of 500", r.Visited)
	}
}

func TestBFSCMCBeatsBaseline(t *testing.T) {
	// The offloading result (paper §II [10]): one CMC probe replaces the
	// read + conditional write. The wins are round trips (claims cost one
	// trip instead of two) and atomicity (no lost or duplicated claims);
	// the baseline additionally risks double claims under concurrency.
	base, err := RunBFS(config.FourLink4GB(), BFSBaseline, 8, 500, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	cmcRun, err := RunBFS(config.FourLink4GB(), BFSCMC, 8, 500, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cmcRun.Cycles >= base.Cycles {
		t.Errorf("CMC %d cycles not faster than baseline %d", cmcRun.Cycles, base.Cycles)
	}
	if cmcRun.DoubleClaims != 0 {
		t.Errorf("CMC double claims %d", cmcRun.DoubleClaims)
	}
}

func TestRandomGraphConnected(t *testing.T) {
	g := NewRandomGraph(200, 3, 1)
	if g.Vertices() != 200 {
		t.Fatalf("vertices = %d", g.Vertices())
	}
	// Host-side BFS reachability check.
	seen := make([]bool, 200)
	queue := []uint32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, n := range g.Adj[v] {
			if !seen[n] {
				seen[n] = true
				count++
				queue = append(queue, n)
			}
		}
	}
	if count != 200 {
		t.Errorf("graph not connected: reached %d", count)
	}
	// Determinism.
	g2 := NewRandomGraph(200, 3, 1)
	if g2.Edges() != g.Edges() {
		t.Error("same seed produced different graphs")
	}
}

// spinForever is an agent that reads the same address endlessly.
type spinForever struct{}

func (spinForever) Next(cycle uint64) *packet.Rqst {
	r, err := sim.BuildRead(0, 0, 0, 0, 16)
	if err != nil {
		panic(err)
	}
	return r
}
func (spinForever) Complete(rsp *packet.Rsp, cycle uint64) error { return nil }
func (spinForever) Done() bool                                   { return false }

func TestRunEngineTimeout(t *testing.T) {
	s, err := sim.New(config.TwoGBDev())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(s, []Agent{spinForever{}}, 50)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("Run with endless agent: %v", err)
	}
}

func TestRunTooManyAgents(t *testing.T) {
	s, err := sim.New(config.TwoGBDev())
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]Agent, packet.MaxTag+1)
	for i := range agents {
		agents[i] = spinForever{}
	}
	if _, err := Run(s, agents, 10); !errors.Is(err, ErrTooManyAgents) {
		t.Errorf("oversized agent set: %v", err)
	}
}

func TestRunAlreadyDoneAgents(t *testing.T) {
	s, err := sim.New(config.TwoGBDev())
	if err != nil {
		t.Fatal(err)
	}
	done := &MutexAgent{}
	done.state = mutexDone
	res, err := Run(s, []Agent{done}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Errorf("empty run took %d cycles", res.Cycles)
	}
}

func TestStreamMoreThreadsThanBlocks(t *testing.T) {
	// Agents beyond the block count have empty chunks and finish
	// immediately; the run still verifies.
	r, err := RunStream(config.TwoGBDev(), 16, 4, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if r.Elements != 32 {
		t.Errorf("elements = %d", r.Elements)
	}
}
